package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
)

// Capper is the mechanism the enforcer drives: CFS bandwidth control
// on the machine (implemented by the agent over the cgroup package,
// or by an operator shim). Quota is in CPU-sec/sec.
type Capper interface {
	Cap(task model.TaskID, quota float64) error
	Uncap(task model.TaskID) error
}

// LeaseCapper is the crash-safe extension of Capper: caps carry a TTL
// lease the mechanism self-releases when it stops being renewed. The
// enforcer uses it when the Capper provides it (machine.Machine does);
// plain Cappers fall back to unleased caps, losing the backstop but
// keeping the policy identical.
type LeaseCapper interface {
	Capper
	CapLease(task model.TaskID, quota float64, expires time.Time) error
	RenewCapLease(task model.TaskID, expires time.Time) bool
}

// cappedChecker lets reconciliation interrogate live mechanism state
// (machine.Machine implements it); optional for test fakes.
type cappedChecker interface {
	IsCapped(task model.TaskID) bool
}

// ActionType classifies what the enforcer decided to do.
type ActionType int

const (
	// ActionNone: no suspect met the correlation threshold, or the
	// victim is not eligible for protection.
	ActionNone ActionType = iota
	// ActionReport: an antagonist was identified but auto-capping is
	// off or the antagonist is not throttleable; the incident is
	// reported for operators.
	ActionReport
	// ActionCap: the antagonist was hard-capped.
	ActionCap
)

// String implements fmt.Stringer.
func (a ActionType) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionReport:
		return "report"
	case ActionCap:
		return "cap"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Decision is the outcome of one enforcement round.
type Decision struct {
	Action ActionType
	// Target is the chosen antagonist (zero TaskID when ActionNone).
	Target model.TaskID
	// Quota is the applied cap in CPU-sec/sec (ActionCap only).
	Quota float64
	// Until is when the cap expires (ActionCap only).
	Until time.Time
	// Reason is a human-readable explanation.
	Reason string
}

// activeCap tracks one in-force hard cap.
type activeCap struct {
	task    model.TaskID
	victim  model.TaskID
	quota   float64
	expires time.Time
	// round counts how many times this victim has triggered capping of
	// this task, for feedback throttling.
	round int
}

// Enforcer implements the §5 policy: prefer latency-sensitive jobs
// over batch; cap only throttleable (batch) antagonists, at
// 0.01 CPU-sec/sec for best-effort and 0.1 for other batch, for
// CapDuration; expire caps; and optionally adapt quotas per round
// (FeedbackThrottling, §9).
type Enforcer struct {
	params  Params
	capper  Capper
	metrics *Metrics  // never nil
	events  EventSink // never nil

	mu      sync.Mutex
	journal CapJournal // never nil; nopJournal = unjournalled
	active  map[model.TaskID]*activeCap
	// history remembers victim→task cap rounds even after expiry so
	// feedback throttling can escalate on repeat offenders.
	rounds map[string]int
	// lastNow is the most recent simulation/decision time the enforcer
	// has seen (Decide/Tick/Reconcile). Externally triggered releases
	// (TaskExited) stamp their events with it so event logs stay
	// deterministic under simulated clocks.
	lastNow time.Time
	// journalErrs counts failed journal appends; enforcement proceeds
	// regardless (leases bound the damage), but the count is surfaced
	// so a dead disk is visible.
	journalErrs int64
}

// NewEnforcer returns an enforcer applying caps through capper.
func NewEnforcer(p Params, capper Capper) *Enforcer {
	return &Enforcer{
		params:  p.Sanitize(),
		capper:  capper,
		metrics: &Metrics{},
		events:  nopSink{},
		journal: nopJournal{},
		active:  make(map[model.TaskID]*activeCap),
		rounds:  make(map[string]int),
	}
}

// SetJournal directs actuation records to j (nil disables). Locked
// like SetMetrics: Decide/Tick append under e.mu.
func (e *Enforcer) SetJournal(j CapJournal) {
	if j == nil {
		j = nopJournal{}
	}
	e.mu.Lock()
	e.journal = j
	e.mu.Unlock()
}

// JournalErrors returns the count of failed journal appends.
func (e *Enforcer) JournalErrors() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.journalErrs
}

// applyCap drives the mechanism, leasing the cap when the capper
// supports it. Callers hold e.mu.
func (e *Enforcer) applyCap(now time.Time, task model.TaskID, quota float64) error {
	if lc, ok := e.capper.(LeaseCapper); ok {
		return lc.CapLease(task, quota, now.Add(e.params.CapLeaseTTL))
	}
	return e.capper.Cap(task, quota)
}

// appendJournal records one actuation, counting (not propagating)
// failures. Callers hold e.mu.
func (e *Enforcer) appendJournal(entry CapJournalEntry) {
	if err := e.journal.Append(entry); err != nil {
		e.journalErrs++
	}
}

// SetMetrics instruments the enforcer with m (nil disables). The lock
// matters: Decide/Tick read e.metrics under e.mu from agent goroutines,
// so an unlocked setter write is a data race even if callers "usually"
// instrument before traffic flows.
func (e *Enforcer) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	e.mu.Lock()
	e.metrics = m
	e.mu.Unlock()
}

// SetEvents directs cap-lifecycle events to sink (nil disables). Locked
// for the same reason as SetMetrics.
func (e *Enforcer) SetEvents(sink EventSink) {
	if sink == nil {
		sink = nopSink{}
	}
	e.mu.Lock()
	e.events = sink
	e.mu.Unlock()
}

// capEvent is the payload of cap_applied / cap_expired / cap_released
// forensics events.
type capEvent struct {
	Task   string     `json:"task"`
	Victim string     `json:"victim,omitempty"`
	Quota  float64    `json:"quota,omitempty"`
	Until  *time.Time `json:"until,omitempty"`
	Round  int        `json:"round,omitempty"`
	Reason string     `json:"reason,omitempty"`
}

// JobResolver supplies job metadata for suspects; provided by the
// caller because the enforcer itself holds no job table. When it
// returns false the enforcer falls back to the class/priority carried
// on the Suspect.
type JobResolver func(model.JobName) (model.Job, bool)

// Decide runs one enforcement round for an anomalous victim with the
// given ranked suspects. It picks the highest-correlated suspect that
// (a) meets the correlation threshold and (b) is throttleable, and —
// if the victim's job is protected and enforcement is enabled — applies a hard
// cap via the Capper. Already-capped suspects are skipped: throttling
// an already-throttled task cannot help, and its reduced CPU usage
// will naturally drop it from future rankings (§5).
func (e *Enforcer) Decide(now time.Time, victim model.TaskID, victimJob model.Job,
	ranked []Suspect, resolve JobResolver) Decision {

	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastNow = now

	// Find the best eligible antagonist.
	var chosen *Suspect
	var chosenJob model.Job
	for i := range ranked {
		s := &ranked[i]
		if s.Correlation < e.params.CorrelationThreshold {
			break // ranked is sorted descending; nothing below qualifies
		}
		if s.Task == victim {
			continue
		}
		if _, capped := e.active[s.Task]; capped {
			continue
		}
		var job model.Job
		var ok bool
		if resolve != nil {
			job, ok = resolve(s.Job)
		}
		if !ok {
			job = model.Job{Name: s.Job, Class: s.Class, Priority: s.Priority}
		}
		if !job.Throttleable() {
			continue
		}
		chosen = s
		chosenJob = job
		break
	}
	if chosen == nil {
		return Decision{Action: ActionNone, Reason: "no throttleable suspect above correlation threshold"}
	}
	if !victimJob.Protected() {
		return Decision{
			Action: ActionReport,
			Target: chosen.Task,
			Reason: fmt.Sprintf("victim %v not protection-eligible; reporting only", victim),
		}
	}
	if e.params.ReportOnly {
		return Decision{
			Action: ActionReport,
			Target: chosen.Task,
			Reason: "auto-capping disabled; reporting for operator action",
		}
	}

	quota := e.quotaFor(chosenJob, victim, chosen.Task)
	if err := e.applyCap(now, chosen.Task, quota); err != nil {
		return Decision{
			Action: ActionReport,
			Target: chosen.Task,
			Reason: fmt.Sprintf("cap failed: %v", err),
		}
	}
	until := now.Add(e.params.CapDuration)
	key := victim.String() + "→" + chosen.Task.String()
	e.rounds[key]++
	e.active[chosen.Task] = &activeCap{
		task:    chosen.Task,
		victim:  victim,
		quota:   quota,
		expires: until,
		round:   e.rounds[key],
	}
	e.appendJournal(CapJournalEntry{
		Op: CapOpCap, Time: now, Task: chosen.Task.String(),
		Victim: victim.String(), Quota: quota, Expires: until, Round: e.rounds[key],
	})
	e.metrics.CapsApplied.Inc()
	e.metrics.CapsActive.Inc()
	e.events.Emit(now, "cap_applied", capEvent{
		Task: chosen.Task.String(), Victim: victim.String(),
		Quota: quota, Until: &until, Round: e.rounds[key],
	})
	return Decision{
		Action: ActionCap,
		Target: chosen.Task,
		Quota:  quota,
		Until:  until,
		Reason: fmt.Sprintf("correlation %.2f ≥ %.2f", chosen.Correlation, e.params.CorrelationThreshold),
	}
}

// quotaFor returns the cap quota for a job: the Table 2 fixed values,
// or — with FeedbackThrottling — a quota that halves on each repeated
// round against the same victim, down to the best-effort floor.
func (e *Enforcer) quotaFor(job model.Job, victim, target model.TaskID) float64 {
	base := e.params.BatchQuota
	if job.Priority == model.PriorityBestEffort {
		base = e.params.BestEffortQuota
	}
	if !e.params.FeedbackThrottling {
		return base
	}
	round := e.rounds[victim.String()+"→"+target.String()] // rounds so far
	for i := 0; i < round; i++ {
		base /= 2
		if base < e.params.BestEffortQuota {
			base = e.params.BestEffortQuota
			break
		}
	}
	return base
}

// DecideGroup enforces against an antagonist group (GroupDetection):
// every throttleable, not-already-capped member is capped, sharing one
// expiry. The same eligibility rules as Decide apply; latency-
// sensitive members are never touched. It returns one Decision per
// member acted on (capped or reported).
func (e *Enforcer) DecideGroup(now time.Time, victim model.TaskID, victimJob model.Job,
	group GroupSuspect, resolve JobResolver) []Decision {

	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastNow = now
	var out []Decision
	for _, s := range group.Members {
		if s.Task == victim {
			continue
		}
		if _, capped := e.active[s.Task]; capped {
			continue
		}
		var job model.Job
		var ok bool
		if resolve != nil {
			job, ok = resolve(s.Job)
		}
		if !ok {
			job = model.Job{Name: s.Job, Class: s.Class, Priority: s.Priority}
		}
		if !job.Throttleable() {
			continue
		}
		if !victimJob.Protected() || e.params.ReportOnly {
			out = append(out, Decision{
				Action: ActionReport,
				Target: s.Task,
				Reason: fmt.Sprintf("group member (group corr %.2f); reporting only", group.Correlation),
			})
			continue
		}
		quota := e.quotaFor(job, victim, s.Task)
		if err := e.applyCap(now, s.Task, quota); err != nil {
			out = append(out, Decision{
				Action: ActionReport,
				Target: s.Task,
				Reason: fmt.Sprintf("group cap failed: %v", err),
			})
			continue
		}
		until := now.Add(e.params.CapDuration)
		key := victim.String() + "→" + s.Task.String()
		e.rounds[key]++
		e.active[s.Task] = &activeCap{
			task: s.Task, victim: victim, quota: quota, expires: until,
			round: e.rounds[key],
		}
		e.appendJournal(CapJournalEntry{
			Op: CapOpCap, Time: now, Task: s.Task.String(),
			Victim: victim.String(), Quota: quota, Expires: until, Round: e.rounds[key],
		})
		e.metrics.CapsApplied.Inc()
		e.metrics.CapsActive.Inc()
		e.events.Emit(now, "cap_applied", capEvent{
			Task: s.Task.String(), Victim: victim.String(),
			Quota: quota, Until: &until, Round: e.rounds[key],
		})
		out = append(out, Decision{
			Action: ActionCap,
			Target: s.Task,
			Quota:  quota,
			Until:  until,
			Reason: fmt.Sprintf("member of %d-task group, group corr %.2f", len(group.Members), group.Correlation),
		})
	}
	return out
}

// Tick expires caps whose duration has elapsed, uncapping the tasks.
// It returns the tasks released. Call it at least once per sampling
// interval. A failed Uncap leaves the cap active, so it is retried on
// every subsequent tick until the mechanism recovers.
//
// Expired caps are collected and sorted by task before any Uncap or
// event emission: iterating the active map directly would emit
// cap_expired events in map order, breaking event-log byte-identity
// across runs whenever two caps expire on the same tick.
func (e *Enforcer) Tick(now time.Time) []model.TaskID {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastNow = now
	lc, leased := e.capper.(LeaseCapper)
	var expired []*activeCap
	for _, ac := range e.active {
		if !now.Before(ac.expires) {
			expired = append(expired, ac)
		} else if leased {
			// Renew the mechanism lease on every live cap: the lease is
			// the crash backstop, renewal is the liveness signal. If the
			// machine already swept the lease (we stalled past the TTL),
			// re-assert the cap — it is still policy until ac.expires.
			if !lc.RenewCapLease(ac.task, now.Add(e.params.CapLeaseTTL)) {
				_ = lc.CapLease(ac.task, ac.quota, now.Add(e.params.CapLeaseTTL))
			}
		}
	}
	sort.Slice(expired, func(i, j int) bool {
		return expired[i].task.String() < expired[j].task.String()
	})
	var released []model.TaskID
	for _, ac := range expired {
		if err := e.capper.Uncap(ac.task); err == nil {
			released = append(released, ac.task)
			delete(e.active, ac.task)
			e.appendJournal(CapJournalEntry{
				Op: CapOpUncap, Time: now, Task: ac.task.String(), Reason: "expired",
			})
			e.metrics.CapsExpired.Inc()
			e.metrics.CapsActive.Dec()
			e.events.Emit(now, "cap_expired", capEvent{Task: ac.task.String(), Victim: ac.victim.String()})
		}
	}
	return released
}

// TaskExited releases the active cap on a departed task immediately,
// without driving the mechanism (the task's cgroup is already gone —
// Hierarchy.Remove cleared the limit with it). Without this, the cap
// would linger in ActiveCaps until TTL/CapDuration expiry and its
// Uncap would fail forever against the missing group. The release is
// journalled and logged like any other; the event timestamp is the
// enforcer's last decision time, keeping simulated-clock event logs
// deterministic.
func (e *Enforcer) TaskExited(task model.TaskID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ac, ok := e.active[task]
	if !ok {
		return
	}
	delete(e.active, task)
	e.appendJournal(CapJournalEntry{
		Op: CapOpUncap, Time: e.lastNow, Task: task.String(), Reason: "task_exited",
	})
	e.metrics.CapsReleased.Inc()
	e.metrics.CapsActive.Dec()
	e.events.Emit(e.lastNow, "cap_released", capEvent{
		Task: task.String(), Victim: ac.victim.String(), Reason: "task_exited",
	})
}

// Reconcile replays a cap journal against live mechanism state after
// a restart: caps that are still in force and unexpired are re-adopted
// (resuming their original expiry and feedback-throttling round), and
// everything else — expired entries, caps whose task vanished, caps
// the machine already swept — is released as an orphan. It returns the
// re-adopted and orphaned tasks, each in sorted order.
//
// Reconcile is for startup, before the enforcer makes decisions;
// already-active in-memory caps are left alone (a journalled cap never
// downgrades a live one).
func (e *Enforcer) Reconcile(now time.Time, entries []CapJournalEntry) (adopted, orphaned []model.TaskID) {
	live, _ := ReplayCapEntries(entries)
	type pending struct {
		task  model.TaskID
		entry CapJournalEntry
	}
	caps := make([]pending, 0, len(live))
	for task, entry := range live {
		caps = append(caps, pending{task, entry})
	}
	sort.Slice(caps, func(i, j int) bool {
		return caps[i].task.String() < caps[j].task.String()
	})

	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastNow = now
	checker, canCheck := e.capper.(cappedChecker)
	for _, p := range caps {
		if _, ok := e.active[p.task]; ok {
			continue // live in-memory cap wins
		}
		liveCapped := !canCheck || checker.IsCapped(p.task)
		if now.Before(p.entry.Expires) && liveCapped {
			// Re-adopt: reassert the cap (refreshing its lease) and
			// resume bookkeeping exactly where the dead agent left it.
			victim, _ := model.ParseTaskID(p.entry.Victim)
			if err := e.applyCap(now, p.task, p.entry.Quota); err != nil {
				// Mechanism refused (task raced away): orphan instead.
				e.orphanLocked(now, p.task, false)
				orphaned = append(orphaned, p.task)
				continue
			}
			e.active[p.task] = &activeCap{
				task: p.task, victim: victim, quota: p.entry.Quota,
				expires: p.entry.Expires, round: p.entry.Round,
			}
			if p.entry.Round > 0 && p.entry.Victim != "" {
				key := p.entry.Victim + "→" + p.entry.Task
				if e.rounds[key] < p.entry.Round {
					e.rounds[key] = p.entry.Round
				}
			}
			e.metrics.CapsAdopted.Inc()
			e.metrics.CapsActive.Inc()
			until := p.entry.Expires
			e.events.Emit(now, "cap_adopted", capEvent{
				Task: p.task.String(), Victim: p.entry.Victim,
				Quota: p.entry.Quota, Until: &until, Round: p.entry.Round,
			})
			adopted = append(adopted, p.task)
			continue
		}
		e.orphanLocked(now, p.task, liveCapped)
		orphaned = append(orphaned, p.task)
	}
	return adopted, orphaned
}

// orphanLocked releases one journalled cap that cannot be re-adopted.
// Callers hold e.mu.
func (e *Enforcer) orphanLocked(now time.Time, task model.TaskID, liveCapped bool) {
	if liveCapped {
		_ = e.capper.Uncap(task) // best effort; the lease sweep backstops failure
	}
	e.appendJournal(CapJournalEntry{
		Op: CapOpUncap, Time: now, Task: task.String(), Reason: "orphaned",
	})
	e.metrics.CapsOrphaned.Inc()
	e.events.Emit(now, "cap_orphaned", capEvent{Task: task.String(), Reason: "orphaned"})
}

// ActiveCaps returns the currently capped tasks and their quotas.
func (e *Enforcer) ActiveCaps() map[model.TaskID]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[model.TaskID]float64, len(e.active))
	for t, c := range e.active {
		out[t] = c.quota
	}
	return out
}

// ReleaseAll removes every active cap immediately (operator action,
// or cluster-wide disable). It returns the released tasks. Like Tick,
// it uncaps and emits in sorted task order, not map order, so the
// event log is reproducible.
func (e *Enforcer) ReleaseAll() []model.TaskID {
	e.mu.Lock()
	defer e.mu.Unlock()
	caps := make([]*activeCap, 0, len(e.active))
	for _, ac := range e.active {
		caps = append(caps, ac)
	}
	sort.Slice(caps, func(i, j int) bool {
		return caps[i].task.String() < caps[j].task.String()
	})
	var released []model.TaskID
	for _, ac := range caps {
		if err := e.capper.Uncap(ac.task); err == nil {
			released = append(released, ac.task)
			delete(e.active, ac.task)
			e.appendJournal(CapJournalEntry{
				Op: CapOpUncap, Time: e.lastNow, Task: ac.task.String(), Reason: "released",
			})
			e.metrics.CapsReleased.Inc()
			e.metrics.CapsActive.Dec()
			// Operator action, not simulation-driven: wall time is the
			// honest timestamp here.
			e.events.Emit(time.Now().UTC(), "cap_released", capEvent{Task: ac.task.String(), Victim: ac.victim.String()})
		}
	}
	return released
}

package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
)

// Handoff: live resharding moves a subset of a SpecBuilder's keys to
// another builder using the checkpoint format as the wire frame.
// Because every per-key aggregate (pending Welford moments, the
// age-weighted history, the published spec) is independent of every
// other key's, exporting a key from one builder and importing it into
// another — then recomputing both at the same instant — produces
// byte-identical specs to never having moved it. That property is what
// lets a 1→4 shard split (or any ring change) promise spec equivalence
// instead of merely eventual convergence; handoff_test.go pins it.

// ExportKeys removes the given keys' state — history, pending
// interval, and published spec — from b and returns it as a
// Checkpoint stamped with now. Keys the builder does not know are
// silently absent from the result (a reshard computes the moved-key
// set from ring membership, which may be a superset of what this
// builder has seen). The returned frame carries the builder's
// LastRecompute so the importer can adopt the recompute cadence.
func (b *SpecBuilder) ExportKeys(keys []model.SpecKey, now time.Time) Checkpoint {
	only := make(map[model.SpecKey]bool, len(keys))
	for _, k := range keys {
		only[k] = true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := b.checkpointLocked(now, only)
	var backlog int64
	for k := range only {
		if agg, ok := b.pending[k]; ok {
			backlog += agg.cpi.N()
		}
		delete(b.history, k)
		delete(b.pending, k)
		delete(b.specs, k)
	}
	b.metrics.SpecBacklog.Add(-float64(backlog))
	return cp
}

// ImportCheckpoint merges cp's keys into b. It is all-or-nothing: a
// malformed frame (parseCheckpoint rules) or a key collision with
// state b already holds is an error that leaves b untouched —
// ownership of a key lives on exactly one shard, so a collision means
// the ring diff and the handoff disagree, and silently overwriting
// either side would corrupt a spec. An empty builder adopts the
// frame's LastRecompute, so a freshly created shard recomputes on the
// donor's cadence instead of immediately.
func (b *SpecBuilder) ImportCheckpoint(cp Checkpoint) error {
	history, pending, specs, err := parseCheckpoint(cp)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range history {
		if _, dup := b.history[k]; dup {
			return fmt.Errorf("core: handoff import: history for %s already present", k)
		}
	}
	for k := range pending {
		if _, dup := b.pending[k]; dup {
			return fmt.Errorf("core: handoff import: pending for %s already present", k)
		}
	}
	for k := range specs {
		if _, dup := b.specs[k]; dup {
			return fmt.Errorf("core: handoff import: spec for %s already present", k)
		}
	}
	for k, h := range history {
		b.history[k] = h
	}
	var backlog int64
	for k, agg := range pending {
		b.pending[k] = agg
		backlog += agg.cpi.N()
	}
	for k, s := range specs {
		b.specs[k] = s
	}
	if b.lastRecompute.IsZero() {
		b.lastRecompute = cp.LastRecompute
	}
	b.metrics.SpecBacklog.Add(float64(backlog))
	return nil
}

// Keys returns every key the builder holds state for — the union of
// history, pending, and published specs — sorted by (job, platform).
// Resharding diffs ring ownership over exactly this set.
func (b *SpecBuilder) Keys() []model.SpecKey {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := make(map[model.SpecKey]bool, len(b.history)+len(b.pending)+len(b.specs))
	for k := range b.history {
		set[k] = true
	}
	for k := range b.pending {
		set[k] = true
	}
	for k := range b.specs {
		set[k] = true
	}
	out := make([]model.SpecKey, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Platform < out[j].Platform
	})
	return out
}

// KeyCount returns len(Keys()) without building the slice.
func (b *SpecBuilder) KeyCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := make(map[model.SpecKey]bool, len(b.history)+len(b.pending)+len(b.specs))
	for k := range b.history {
		set[k] = true
	}
	for k := range b.pending {
		set[k] = true
	}
	for k := range b.specs {
		set[k] = true
	}
	return len(set)
}

// LastRecompute returns when the builder last recomputed (zero before
// the first recompute). The /debug/ring endpoint reports it as the
// shard's spec freshness.
func (b *SpecBuilder) LastRecompute() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastRecompute
}

package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

// Assessment is the detector's verdict on one CPI sample.
type Assessment struct {
	// HasSpec is false when no robust spec is known for the task's
	// job×platform; no judgement is possible then.
	HasSpec bool
	// Filtered is true when the sample was ignored because the task
	// used less CPU than MinCPUUsage (the Case 3 false-alarm filter).
	Filtered bool
	// Outlier is true when CPI exceeded the spec's 2σ threshold.
	Outlier bool
	// Anomalous is true when the task has been flagged an outlier at
	// least ViolationsRequired times within ViolationWindow — the bar
	// for starting antagonist identification.
	Anomalous bool
	// Threshold is the outlier CPI threshold that was applied.
	Threshold float64
	// SpecMean / SpecStddev are the Welford moments of the spec the
	// sample was judged against (zero without a spec). Identifiers that
	// normalize victim CPI need the raw moments, not just the threshold.
	SpecMean   float64
	SpecStddev float64
	// SigmasAbove is how many spec standard deviations the sample sits
	// above the spec mean (0 when at or below the mean, or no spec).
	SigmasAbove float64
	// SpecAge is how stale the spec used for the judgement was at the
	// sample's timestamp (zero when the spec carries no UpdatedAt, as
	// bootstrap specs do) — the cpi2_spec_staleness_seconds SLI.
	SpecAge time.Duration
	// FirstOutlierAt is when the task's current outlier episode began
	// (the first violation still inside the window). Zero unless the
	// sample is an outlier. It anchors the detect-to-cap SLI.
	FirstOutlierAt time.Time
}

// Detector performs the local anomaly detection that runs on every
// machine (§4.1): it holds predicted CPI specs pushed from the
// aggregator and judges each incoming CPI sample against them,
// maintaining the per-task flag history for the 3-in-5-minutes rule.
type Detector struct {
	params Params

	mu    sync.Mutex
	specs map[model.SpecKey]model.Spec
	flags map[model.TaskID]*timeseries.Series
	// episodes tracks, per task, when the current run of outlier
	// violations started; it is the anchor for the detect-to-cap
	// reaction-time SLI and is cleared when the window goes quiet.
	episodes map[model.TaskID]time.Time
}

// NewDetector returns a detector using p (sanitized).
func NewDetector(p Params) *Detector {
	return &Detector{
		params:   p.Sanitize(),
		specs:    make(map[model.SpecKey]model.Spec),
		flags:    make(map[model.TaskID]*timeseries.Series),
		episodes: make(map[model.TaskID]time.Time),
	}
}

// UpdateSpec installs or refreshes the predicted CPI distribution for
// a job×platform. Specs failing the robustness gates are ignored:
// the paper does no CPI management for jobs with <5 tasks or <100
// samples/task.
func (d *Detector) UpdateSpec(s model.Spec) {
	if !s.Robust(d.params.MinTasks, d.params.MinSamplesPerTask) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.specs[s.Key()] = s
}

// Spec returns the installed spec for key.
func (d *Detector) Spec(key model.SpecKey) (model.Spec, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.specs[key]
	return s, ok
}

// Specs returns every installed spec sorted by key — the machine's
// current job×platform spec table (the admin /debug/specs view).
func (d *Detector) Specs() []model.Spec {
	d.mu.Lock()
	out := make([]model.Spec, 0, len(d.specs))
	for _, s := range d.specs {
		out = append(out, s)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Platform < out[j].Platform
	})
	return out
}

// Observe judges one sample. It must be called with non-decreasing
// timestamps per task (the sampler guarantees this).
func (d *Detector) Observe(s model.Sample) Assessment {
	d.mu.Lock()
	defer d.mu.Unlock()

	spec, ok := d.specs[model.SpecKey{Job: s.Job, Platform: s.Platform}]
	if !ok {
		return Assessment{}
	}
	a := Assessment{
		HasSpec:    true,
		Threshold:  spec.OutlierThreshold(d.params.OutlierSigma),
		SpecMean:   spec.CPIMean,
		SpecStddev: spec.CPIStddev,
	}
	if spec.CPIStddev > 0 && s.CPI > spec.CPIMean {
		a.SigmasAbove = (s.CPI - spec.CPIMean) / spec.CPIStddev
	}
	if !spec.UpdatedAt.IsZero() {
		if age := s.Timestamp.Sub(spec.UpdatedAt); age > 0 {
			a.SpecAge = age
		}
	}
	if s.CPUUsage < d.params.MinCPUUsage {
		// CPI spikes at near-zero CPU usage are usually self-inflicted
		// (Case 3); don't flag, and don't record a violation.
		a.Filtered = true
		return a
	}

	fl, ok := d.flags[s.Task]
	if !ok {
		fl = timeseries.NewBounded(2*d.params.ViolationWindow, 0)
		d.flags[s.Task] = fl
	}
	outlier := s.CPI > a.Threshold
	a.Outlier = outlier
	v := 0.0
	if outlier {
		v = 1
	}
	// Ignore errors from replayed timestamps; equal stamps overwrite.
	_ = fl.Append(s.Timestamp, v)

	windowStart := s.Timestamp.Add(-d.params.ViolationWindow)
	violations := fl.CountSince(windowStart, s.Timestamp.Add(time.Nanosecond),
		func(x float64) bool { return x == 1 })
	a.Anomalous = violations >= d.params.ViolationsRequired

	// Episode bookkeeping for the detect-to-cap SLI. An episode opens
	// on the first outlier and closes once the window holds no
	// violations at all (so a one-off blip that ages out resets the
	// anchor rather than inflating the next episode's latency).
	if outlier {
		start, open := d.episodes[s.Task]
		if !open || start.Before(windowStart) && violations == 1 {
			start = s.Timestamp
			d.episodes[s.Task] = start
		}
		a.FirstOutlierAt = start
	} else if violations == 0 {
		delete(d.episodes, s.Task)
	}
	return a
}

// Forget drops the flag history for a task (call when a task exits so
// state does not leak across task lifetimes).
func (d *Detector) Forget(task model.TaskID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.flags, task)
	delete(d.episodes, task)
}

// TrackedTasks returns how many tasks currently have flag history.
func (d *Detector) TrackedTasks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.flags)
}

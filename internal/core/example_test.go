package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// ExampleCorrelation shows the §4.2 antagonist score on hand-made
// data: the suspect burns CPU exactly when the victim's CPI exceeds
// its abnormal threshold.
func ExampleCorrelation() {
	victimCPI := []float64{1.0, 1.0, 3.0, 3.0, 1.0, 3.0}
	suspectCPU := []float64{0.1, 0.1, 4.0, 4.0, 0.1, 4.0}
	threshold := 2.0
	fmt.Printf("%.2f\n", core.Correlation(victimCPI, suspectCPU, threshold))
	// Output: 0.31
}

// capperFunc adapts a function to the Capper interface.
type capperFunc func(model.TaskID, float64) error

func (f capperFunc) Cap(t model.TaskID, q float64) error { return f(t, q) }
func (capperFunc) Uncap(model.TaskID) error              { return nil }

// ExampleManager walks the full per-machine loop: install a spec,
// feed samples, and watch CPI² identify and cap the antagonist.
func ExampleManager() {
	capper := capperFunc(func(t model.TaskID, q float64) error {
		fmt.Printf("capped %v at %.2f CPU-sec/sec\n", t, q)
		return nil
	})
	mgr := core.NewManager("machine-17", core.DefaultParams(), capper)

	mgr.RegisterJob(model.Job{Name: "frontend", Class: model.ClassLatencySensitive,
		Priority: model.PriorityProduction})
	mgr.RegisterJob(model.Job{Name: "transcode", Class: model.ClassBatch,
		Priority: model.PriorityBatch})
	mgr.UpdateSpec(model.Spec{
		Job: "frontend", Platform: model.PlatformA,
		NumSamples: 100000, NumTasks: 500,
		CPIMean: 1.0, CPIStddev: 0.1, // threshold = 1.2
	})

	start := time.Date(2013, 4, 15, 9, 0, 0, 0, time.UTC)
	for minute := 0; minute < 5; minute++ {
		ts := start.Add(time.Duration(minute) * time.Minute)
		// The antagonist is hot, and the victim's CPI is 3× its spec.
		mgr.Observe(model.Sample{
			Job: "transcode", Task: model.TaskID{Job: "transcode", Index: 0},
			Platform: model.PlatformA, Timestamp: ts, CPUUsage: 6.0, CPI: 1.5,
		})
		inc := mgr.Observe(model.Sample{
			Job: "frontend", Task: model.TaskID{Job: "frontend", Index: 2},
			Platform: model.PlatformA, Timestamp: ts, CPUUsage: 1.0, CPI: 3.0,
		})
		if inc != nil {
			fmt.Printf("incident: victim %v, top suspect %v (corr %.2f), action %s\n",
				inc.Victim, inc.Suspects[0].Task, inc.Suspects[0].Correlation,
				inc.Decision.Action)
			break
		}
	}
	// Output:
	// capped transcode/0 at 0.10 CPU-sec/sec
	// incident: victim frontend/2, top suspect transcode/0 (corr 0.60), action cap
}

// ExampleParams_Sanitize shows partial configuration: set only what
// you want to change; everything else takes Table 2 defaults.
func ExampleParams_Sanitize() {
	p := core.Params{CorrelationThreshold: 0.5, ReportOnly: true}.Sanitize()
	fmt.Println(p.CorrelationThreshold, p.OutlierSigma, p.ViolationsRequired, p.ReportOnly)
	// Output: 0.5 2 3 true
}

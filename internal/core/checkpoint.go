package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
)

// CheckpointVersion is the current on-disk checkpoint format version.
// Restore rejects checkpoints from other versions rather than guessing.
const CheckpointVersion = 1

// Checkpoint is a serializable snapshot of a SpecBuilder: the
// age-weighted per-key history, the not-yet-recomputed pending
// interval, and the published specs. An aggregator that restores one
// resumes spec building exactly where it left off instead of
// re-entering the <MinTasks/<MinSamplesPerTask robustness gate for a
// full recompute interval.
//
// All float64 fields round-trip exactly through encoding/json
// (shortest-representation encoding), so a restore reproduces the
// builder bit-for-bit.
type Checkpoint struct {
	Version       int                 `json:"version"`
	SavedAt       time.Time           `json:"saved_at"`
	LastRecompute time.Time           `json:"last_recompute"`
	History       []CheckpointHistory `json:"history,omitempty"`
	Pending       []CheckpointPending `json:"pending,omitempty"`
	Specs         []model.Spec        `json:"specs,omitempty"`
}

// CheckpointHistory is one key's age-weighted carry-over.
type CheckpointHistory struct {
	Job       model.JobName  `json:"job"`
	Platform  model.Platform `json:"platform"`
	Weight    float64        `json:"weight"`
	Mean      float64        `json:"mean"`
	Variance  float64        `json:"variance"`
	UsageMean float64        `json:"usage_mean"`
	Tasks     int            `json:"tasks"`
}

// CheckpointPending is one key's in-flight (pre-recompute) interval.
type CheckpointPending struct {
	Job      model.JobName      `json:"job"`
	Platform model.Platform     `json:"platform"`
	CPI      stats.MomentsState `json:"cpi"`
	CPUUsage stats.MomentsState `json:"cpu_usage"`
	Tasks    []CheckpointTask   `json:"tasks,omitempty"`
	// Oldest/Newest bound the interval's sample timestamps (the
	// sample-to-spec SLI anchor). Absent in pre-SLI checkpoints, which
	// restore with zero bounds and simply skip the first observation.
	Oldest time.Time `json:"oldest,omitempty"`
	Newest time.Time `json:"newest,omitempty"`
}

// CheckpointTask records a task's sample count within a pending
// interval (the robustness gate counts distinct tasks and per-task
// samples).
type CheckpointTask struct {
	Task    model.TaskID `json:"task"`
	Samples int64        `json:"samples"`
}

// Checkpoint snapshots the builder's full state, stamped with now.
// Slices are sorted by job then platform (tasks by task ID), so the
// serialized form is deterministic for identical builder state.
func (b *SpecBuilder) Checkpoint(now time.Time) Checkpoint {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.checkpointLocked(now, nil)
}

// checkpointLocked builds a checkpoint of the keys in only (nil = all
// keys). Caller holds b.mu.
func (b *SpecBuilder) checkpointLocked(now time.Time, only map[model.SpecKey]bool) Checkpoint {
	cp := Checkpoint{
		Version:       CheckpointVersion,
		SavedAt:       now,
		LastRecompute: b.lastRecompute,
	}
	for key, h := range b.history {
		if only != nil && !only[key] {
			continue
		}
		cp.History = append(cp.History, CheckpointHistory{
			Job: key.Job, Platform: key.Platform,
			Weight: h.weight, Mean: h.mean, Variance: h.variance,
			UsageMean: h.usageMean, Tasks: h.tasks,
		})
	}
	sort.Slice(cp.History, func(i, j int) bool {
		if cp.History[i].Job != cp.History[j].Job {
			return cp.History[i].Job < cp.History[j].Job
		}
		return cp.History[i].Platform < cp.History[j].Platform
	})
	for key, agg := range b.pending {
		if only != nil && !only[key] {
			continue
		}
		p := CheckpointPending{
			Job: key.Job, Platform: key.Platform,
			CPI:      agg.cpi.State(),
			CPUUsage: agg.cpuUsage.State(),
			Oldest:   agg.oldest,
			Newest:   agg.newest,
		}
		for task, n := range agg.tasks {
			p.Tasks = append(p.Tasks, CheckpointTask{Task: task, Samples: n})
		}
		sort.Slice(p.Tasks, func(i, j int) bool {
			return p.Tasks[i].Task.String() < p.Tasks[j].Task.String()
		})
		cp.Pending = append(cp.Pending, p)
	}
	sort.Slice(cp.Pending, func(i, j int) bool {
		if cp.Pending[i].Job != cp.Pending[j].Job {
			return cp.Pending[i].Job < cp.Pending[j].Job
		}
		return cp.Pending[i].Platform < cp.Pending[j].Platform
	})
	for key, s := range b.specs {
		if only != nil && !only[key] {
			continue
		}
		cp.Specs = append(cp.Specs, s)
	}
	sort.Slice(cp.Specs, func(i, j int) bool {
		if cp.Specs[i].Job != cp.Specs[j].Job {
			return cp.Specs[i].Job < cp.Specs[j].Job
		}
		return cp.Specs[i].Platform < cp.Specs[j].Platform
	})
	return cp
}

// finite reports whether every f is a real number.
func finite(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// parseCheckpoint validates cp defensively — version mismatch,
// non-finite moments, or negative counts are errors, never panics —
// and materializes its maps. Restore and ImportCheckpoint share it,
// so the handoff frame gets exactly the restore path's scrutiny.
func parseCheckpoint(cp Checkpoint) (map[model.SpecKey]*specHistory, map[model.SpecKey]*pendingAgg, map[model.SpecKey]model.Spec, error) {
	if cp.Version != CheckpointVersion {
		return nil, nil, nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	history := make(map[model.SpecKey]*specHistory, len(cp.History))
	for _, h := range cp.History {
		if h.Job == "" {
			return nil, nil, nil, fmt.Errorf("core: checkpoint history entry with empty job")
		}
		if !finite(h.Weight, h.Mean, h.Variance, h.UsageMean) {
			return nil, nil, nil, fmt.Errorf("core: checkpoint history for %s/%s has non-finite moments", h.Job, h.Platform)
		}
		if h.Weight < 0 || h.Variance < 0 || h.Tasks < 0 {
			return nil, nil, nil, fmt.Errorf("core: checkpoint history for %s/%s has negative fields", h.Job, h.Platform)
		}
		key := model.SpecKey{Job: h.Job, Platform: h.Platform}
		if _, dup := history[key]; dup {
			return nil, nil, nil, fmt.Errorf("core: duplicate checkpoint history key %s/%s", h.Job, h.Platform)
		}
		history[key] = &specHistory{
			weight: h.Weight, mean: h.Mean, variance: h.Variance,
			usageMean: h.UsageMean, tasks: h.Tasks,
		}
	}
	pending := make(map[model.SpecKey]*pendingAgg, len(cp.Pending))
	for _, p := range cp.Pending {
		if p.Job == "" {
			return nil, nil, nil, fmt.Errorf("core: checkpoint pending entry with empty job")
		}
		if !finite(p.CPI.Mean, p.CPI.M2, p.CPUUsage.Mean, p.CPUUsage.M2) {
			return nil, nil, nil, fmt.Errorf("core: checkpoint pending for %s/%s has non-finite moments", p.Job, p.Platform)
		}
		if p.CPI.N < 0 || p.CPI.M2 < 0 || p.CPUUsage.N < 0 || p.CPUUsage.M2 < 0 {
			return nil, nil, nil, fmt.Errorf("core: checkpoint pending for %s/%s has negative fields", p.Job, p.Platform)
		}
		key := model.SpecKey{Job: p.Job, Platform: p.Platform}
		if _, dup := pending[key]; dup {
			return nil, nil, nil, fmt.Errorf("core: duplicate checkpoint pending key %s/%s", p.Job, p.Platform)
		}
		agg := &pendingAgg{
			cpi:      stats.MomentsFromState(p.CPI),
			cpuUsage: stats.MomentsFromState(p.CPUUsage),
			tasks:    make(map[model.TaskID]int64, len(p.Tasks)),
			oldest:   p.Oldest,
			newest:   p.Newest,
		}
		for _, t := range p.Tasks {
			if t.Samples < 0 {
				return nil, nil, nil, fmt.Errorf("core: checkpoint pending for %s/%s: negative samples for %v", p.Job, p.Platform, t.Task)
			}
			if _, dup := agg.tasks[t.Task]; dup {
				return nil, nil, nil, fmt.Errorf("core: checkpoint pending for %s/%s: duplicate task %v", p.Job, p.Platform, t.Task)
			}
			agg.tasks[t.Task] = t.Samples
		}
		pending[key] = agg
	}
	specs := make(map[model.SpecKey]model.Spec, len(cp.Specs))
	for _, s := range cp.Specs {
		if s.Job == "" {
			return nil, nil, nil, fmt.Errorf("core: checkpoint spec with empty job")
		}
		if !finite(s.CPIMean, s.CPIStddev, s.CPUUsageMean) {
			return nil, nil, nil, fmt.Errorf("core: checkpoint spec for %s/%s has non-finite fields", s.Job, s.Platform)
		}
		key := model.SpecKey{Job: s.Job, Platform: s.Platform}
		if _, dup := specs[key]; dup {
			return nil, nil, nil, fmt.Errorf("core: duplicate checkpoint spec key %s/%s", s.Job, s.Platform)
		}
		specs[key] = s
	}
	return history, pending, specs, nil
}

// Restore replaces the builder's state with cp's. It validates the
// checkpoint defensively and leaves the builder untouched on failure.
func (b *SpecBuilder) Restore(cp Checkpoint) error {
	history, pending, specs, err := parseCheckpoint(cp)
	if err != nil {
		return err
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	b.history = history
	b.pending = pending
	b.specs = specs
	b.lastRecompute = cp.LastRecompute
	var backlog int64
	for _, agg := range pending {
		backlog += agg.cpi.N()
	}
	b.metrics.SpecBacklog.Set(float64(backlog))
	return nil
}

// SaveCheckpoint writes cp to path atomically: marshal, write to a
// temp file in the same directory, fsync, rename. A crash mid-write
// leaves the previous checkpoint intact.
func SaveCheckpoint(path string, cp Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("core: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("core: publish checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint previously written by
// SaveCheckpoint.
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	return cp, nil
}

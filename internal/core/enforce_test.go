package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// fakeCapper records cap/uncap calls. failOn makes Cap fail for a
// task; failUncaps makes the next N Uncap calls (any task) fail, the
// way a wedged cgroup writeback would.
type fakeCapper struct {
	mu         sync.Mutex
	caps       map[model.TaskID]float64
	failOn     map[model.TaskID]bool
	failUncaps int
	uncapTried int
}

func newFakeCapper() *fakeCapper {
	return &fakeCapper{caps: make(map[model.TaskID]float64), failOn: make(map[model.TaskID]bool)}
}

func (f *fakeCapper) Cap(task model.TaskID, quota float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failOn[task] {
		return errors.New("cap failed")
	}
	f.caps[task] = quota
	return nil
}

func (f *fakeCapper) Uncap(task model.TaskID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.uncapTried++
	if f.failUncaps > 0 {
		f.failUncaps--
		return errors.New("uncap failed")
	}
	delete(f.caps, task)
	return nil
}

func (f *fakeCapper) quota(task model.TaskID) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	q, ok := f.caps[task]
	return q, ok
}

var (
	victimTask = model.TaskID{Job: "search", Index: 3}
	victimJob  = model.Job{Name: "search", Class: model.ClassLatencySensitive, Priority: model.PriorityProduction}
	batchTask  = model.TaskID{Job: "mapreduce", Index: 7}
	beTask     = model.TaskID{Job: "bg-scan", Index: 1}
	lsTask     = model.TaskID{Job: "bigtable", Index: 2}
)

func jobTable() JobResolver {
	jobs := map[model.JobName]model.Job{
		"search":    victimJob,
		"mapreduce": {Name: "mapreduce", Class: model.ClassBatch, Priority: model.PriorityBatch},
		"bg-scan":   {Name: "bg-scan", Class: model.ClassBatch, Priority: model.PriorityBestEffort},
		"bigtable":  {Name: "bigtable", Class: model.ClassLatencySensitive, Priority: model.PriorityProduction},
	}
	return func(n model.JobName) (model.Job, bool) {
		j, ok := jobs[n]
		return j, ok
	}
}

func TestEnforcerCapsBatchAntagonist(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{
		{Task: lsTask, Job: "bigtable", Correlation: 0.5},
		{Task: batchTask, Job: "mapreduce", Correlation: 0.45},
	}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionCap {
		t.Fatalf("action = %v (%s)", d.Action, d.Reason)
	}
	if d.Target != batchTask {
		t.Errorf("target = %v, want the batch suspect (LS suspects are never capped)", d.Target)
	}
	if d.Quota != 0.1 {
		t.Errorf("quota = %v, want 0.1 for plain batch", d.Quota)
	}
	if q, ok := capper.quota(batchTask); !ok || q != 0.1 {
		t.Errorf("capper state = %v,%v", q, ok)
	}
	if !d.Until.Equal(day0.Add(5 * time.Minute)) {
		t.Errorf("until = %v", d.Until)
	}
}

func TestEnforcerBestEffortGetsHarsherQuota(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{{Task: beTask, Job: "bg-scan", Correlation: 0.6}}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionCap || d.Quota != 0.01 {
		t.Errorf("decision = %+v, want cap at 0.01", d)
	}
}

func TestEnforcerBelowThresholdNoAction(t *testing.T) {
	e := NewEnforcer(DefaultParams(), newFakeCapper())
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.34}}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionNone {
		t.Errorf("action = %v, want none below 0.35", d.Action)
	}
}

func TestEnforcerOnlyLatencySensitiveSuspects(t *testing.T) {
	// Case 3-like: all suspects latency-sensitive → nothing to throttle.
	e := NewEnforcer(DefaultParams(), newFakeCapper())
	ranked := []Suspect{
		{Task: lsTask, Job: "bigtable", Correlation: 0.7},
	}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionNone {
		t.Errorf("action = %v, want none", d.Action)
	}
}

func TestEnforcerUnprotectedVictimReportsOnly(t *testing.T) {
	e := NewEnforcer(DefaultParams(), newFakeCapper())
	batchVictim := model.Job{Name: "other-batch", Class: model.ClassBatch}
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.5}}
	d := e.Decide(day0, model.TaskID{Job: "other-batch"}, batchVictim, ranked, jobTable())
	if d.Action != ActionReport {
		t.Errorf("action = %v, want report", d.Action)
	}
}

func TestEnforcerAutoCapDisabled(t *testing.T) {
	p := DefaultParams()
	p.ReportOnly = true
	capper := newFakeCapper()
	e := NewEnforcer(p, capper)
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.5}}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionReport {
		t.Errorf("action = %v, want report in conservative mode", d.Action)
	}
	if _, ok := capper.quota(batchTask); ok {
		t.Error("cap applied despite ReportOnly")
	}
}

func TestEnforcerCapExpires(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.5}}
	e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if released := e.Tick(day0.Add(4 * time.Minute)); len(released) != 0 {
		t.Errorf("released early: %v", released)
	}
	released := e.Tick(day0.Add(5 * time.Minute))
	if len(released) != 1 || released[0] != batchTask {
		t.Errorf("released = %v", released)
	}
	if _, ok := capper.quota(batchTask); ok {
		t.Error("task still capped after expiry")
	}
	if len(e.ActiveCaps()) != 0 {
		t.Error("active caps not cleared")
	}
}

func TestEnforcerSkipsAlreadyCapped(t *testing.T) {
	// Re-analysis (§5): if the victim stays anomalous, the next round
	// must pick a different suspect, not re-cap the same one.
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{
		{Task: batchTask, Job: "mapreduce", Correlation: 0.6},
		{Task: beTask, Job: "bg-scan", Correlation: 0.4},
	}
	d1 := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d1.Target != batchTask {
		t.Fatalf("round 1 target = %v", d1.Target)
	}
	d2 := e.Decide(day0.Add(time.Minute), victimTask, victimJob, ranked, jobTable())
	if d2.Target != beTask {
		t.Errorf("round 2 target = %v, want the next suspect", d2.Target)
	}
	if len(e.ActiveCaps()) != 2 {
		t.Errorf("active caps = %d", len(e.ActiveCaps()))
	}
}

func TestEnforcerCapFailureReports(t *testing.T) {
	capper := newFakeCapper()
	capper.failOn[batchTask] = true
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.5}}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionReport {
		t.Errorf("action = %v, want report on mechanism failure", d.Action)
	}
}

func TestEnforcerVictimNeverTargetsItself(t *testing.T) {
	e := NewEnforcer(DefaultParams(), newFakeCapper())
	ranked := []Suspect{{Task: victimTask, Job: "search", Correlation: 0.9}}
	d := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d.Action != ActionNone {
		t.Errorf("victim targeted itself: %+v", d)
	}
}

func TestEnforcerNilResolverFallsBackToSuspectMetadata(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{{
		Task: batchTask, Job: "mapreduce",
		Class: model.ClassBatch, Priority: model.PriorityBestEffort,
		Correlation: 0.5,
	}}
	d := e.Decide(day0, victimTask, victimJob, ranked, nil)
	if d.Action != ActionCap || d.Quota != 0.01 {
		t.Errorf("decision = %+v", d)
	}
}

func TestEnforcerFeedbackThrottlingEscalates(t *testing.T) {
	p := DefaultParams()
	p.FeedbackThrottling = true
	capper := newFakeCapper()
	e := NewEnforcer(p, capper)
	ranked := []Suspect{{Task: batchTask, Job: "mapreduce", Correlation: 0.5}}
	d1 := e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	if d1.Quota != 0.1 {
		t.Fatalf("round 1 quota = %v", d1.Quota)
	}
	// Cap expires, victim still suffering, same suspect re-chosen:
	// quota halves.
	e.Tick(day0.Add(5 * time.Minute))
	d2 := e.Decide(day0.Add(6*time.Minute), victimTask, victimJob, ranked, jobTable())
	if d2.Quota != 0.05 {
		t.Errorf("round 2 quota = %v, want 0.05", d2.Quota)
	}
	// Escalation floors at the best-effort quota.
	for i := 0; i < 6; i++ {
		e.Tick(day0.Add(time.Duration(11+i*6) * time.Minute))
		e.Decide(day0.Add(time.Duration(12+i*6)*time.Minute), victimTask, victimJob, ranked, jobTable())
	}
	e.Tick(day0.Add(60 * time.Minute))
	dN := e.Decide(day0.Add(61*time.Minute), victimTask, victimJob, ranked, jobTable())
	if dN.Quota != p.BestEffortQuota {
		t.Errorf("escalated quota = %v, want floor %v", dN.Quota, p.BestEffortQuota)
	}
}

func TestEnforcerReleaseAll(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	ranked := []Suspect{
		{Task: batchTask, Job: "mapreduce", Correlation: 0.6},
		{Task: beTask, Job: "bg-scan", Correlation: 0.5},
	}
	e.Decide(day0, victimTask, victimJob, ranked, jobTable())
	e.Decide(day0.Add(time.Minute), victimTask, victimJob, ranked, jobTable())
	released := e.ReleaseAll()
	if len(released) != 2 {
		t.Fatalf("released = %v", released)
	}
	if len(e.ActiveCaps()) != 0 {
		t.Error("caps remain after ReleaseAll")
	}
}

func TestActionTypeString(t *testing.T) {
	if ActionNone.String() != "none" || ActionReport.String() != "report" || ActionCap.String() != "cap" {
		t.Error("ActionType strings wrong")
	}
	if ActionType(9).String() != "action(9)" {
		t.Error("unknown action string wrong")
	}
}

package core

import (
	"time"

	"repro/internal/obs"
)

// EventSink receives structured forensics events (incidents, cap
// lifecycle). obs.EventLog implements it; nil sinks are never stored —
// components keep a no-op default instead.
type EventSink interface {
	Emit(now time.Time, typ string, data any)
}

// nopSink is the default event sink.
type nopSink struct{}

func (nopSink) Emit(time.Time, string, any) {}

// Metrics bundles every core-layer metric. All fields are nil-safe
// obs handles, so a zero Metrics disables instrumentation without any
// call-site branches. Build one per registry with NewMetrics; because
// obs registration is idempotent, every NewMetrics call against the
// same registry returns handles to the same underlying series (so a
// cluster of simulated managers aggregates into one set of counters).
type Metrics struct {
	// Detection.
	SamplesObserved *obs.Counter // cpi2_samples_observed_total
	SamplesFiltered *obs.Counter // cpi2_samples_filtered_total
	Outliers        *obs.Counter // cpi2_outliers_total
	Anomalies       *obs.Counter // cpi2_anomalies_total

	// Antagonist identification.
	AnalysesRun         *obs.Counter    // cpi2_analyses_total
	AnalysesRateLimited *obs.Counter    // cpi2_analyses_rate_limited_total
	CorrelationSeconds  *obs.Histogram  // cpi2_correlation_seconds
	GroupDetections     *obs.Counter    // cpi2_group_detections_total
	Incidents           *obs.CounterVec // cpi2_incidents_total{action}

	// Enforcement.
	CapsApplied  *obs.Counter // cpi2_caps_applied_total
	CapsExpired  *obs.Counter // cpi2_caps_expired_total
	CapsReleased *obs.Counter // cpi2_caps_released_total
	CapsActive   *obs.Gauge   // cpi2_caps_active

	// Restart reconciliation (cap journal replay).
	CapsAdopted  *obs.Counter // cpi2_caps_readopted_total
	CapsOrphaned *obs.Counter // cpi2_caps_orphaned_total

	// Input integrity.
	SamplesQuarantined *obs.CounterVec // cpi2_samples_quarantined_total{reason}

	// Spec aggregation.
	SpecsComputed *obs.Counter // cpi2_specs_computed_total
	SpecBacklog   *obs.Gauge   // cpi2_spec_backlog_samples

	// Reaction-time SLIs (simulation/decision-time durations, so they
	// stay deterministic under the cluster's fingerprint tests).
	SampleToSpec  *obs.Histogram    // cpi2_sample_to_spec_seconds
	SpecStaleness *obs.HistogramVec // cpi2_spec_staleness_seconds{job}
	DetectToCap   *obs.Histogram    // cpi2_detect_to_cap_seconds
}

// NewMetrics registers (or fetches) the core metric set on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		SamplesObserved: r.Counter("cpi2_samples_observed_total",
			"CPI samples ingested by the per-machine manager"),
		SamplesFiltered: r.Counter("cpi2_samples_filtered_total",
			"samples ignored for near-zero CPU usage (Case 3 filter)"),
		Outliers: r.Counter("cpi2_outliers_total",
			"samples above the spec's outlier threshold"),
		Anomalies: r.Counter("cpi2_anomalies_total",
			"tasks confirmed anomalous (3 outliers in 5 minutes)"),
		AnalysesRun: r.Counter("cpi2_analyses_total",
			"antagonist-identification analyses executed"),
		AnalysesRateLimited: r.Counter("cpi2_analyses_rate_limited_total",
			"analyses suppressed by the per-machine rate limit"),
		CorrelationSeconds: r.Histogram("cpi2_correlation_seconds",
			"wall-clock latency of one correlation analysis", obs.LatencyBuckets),
		GroupDetections: r.Counter("cpi2_group_detections_total",
			"incidents where an antagonist group was identified"),
		Incidents: r.CounterVec("cpi2_incidents_total",
			"incidents recorded, by enforcement outcome", "action"),
		CapsApplied: r.Counter("cpi2_caps_applied_total",
			"hard caps applied to antagonists"),
		CapsExpired: r.Counter("cpi2_caps_expired_total",
			"hard caps expired after CapDuration"),
		CapsReleased: r.Counter("cpi2_caps_released_total",
			"hard caps released early (operator release-all)"),
		CapsActive: r.Gauge("cpi2_caps_active",
			"hard caps currently in force"),
		CapsAdopted: r.Counter("cpi2_caps_readopted_total",
			"caps re-adopted from the journal after an agent restart"),
		CapsOrphaned: r.Counter("cpi2_caps_orphaned_total",
			"journalled caps released as orphans during reconciliation"),
		SamplesQuarantined: r.CounterVec("cpi2_samples_quarantined_total",
			"samples rejected by the validator, by reason", "reason"),
		SpecsComputed: r.Counter("cpi2_specs_computed_total",
			"robust CPI specs produced by recomputations"),
		SpecBacklog: r.Gauge("cpi2_spec_backlog_samples",
			"samples accumulated since the last spec recompute"),
		SampleToSpec: r.Histogram("cpi2_sample_to_spec_seconds",
			"age of the oldest pending sample folded into a spec recompute",
			obs.StalenessBuckets),
		SpecStaleness: r.HistogramVec("cpi2_spec_staleness_seconds",
			"age of the installed spec each time it judges a sample",
			obs.StalenessBuckets, "job"),
		DetectToCap: r.Histogram("cpi2_detect_to_cap_seconds",
			"latency from a task's first outlier to a cap decision",
			obs.ReactionBuckets),
	}
}

// NewLocalMetrics returns a core metric set backed by standalone
// (unregistered) cells — the per-machine shard of the cluster's staged
// metrics design. Managers running on concurrently ticking machines
// each update a private shard (uncontended cache lines); the cluster's
// serial commit phase folds every shard into the shared registry
// series with DrainTo, in machine-index order, so the aggregated
// values are identical at any worker count.
func NewLocalMetrics() *Metrics {
	return &Metrics{
		SamplesObserved:     &obs.Counter{},
		SamplesFiltered:     &obs.Counter{},
		Outliers:            &obs.Counter{},
		Anomalies:           &obs.Counter{},
		AnalysesRun:         &obs.Counter{},
		AnalysesRateLimited: &obs.Counter{},
		CorrelationSeconds:  obs.NewHistogram(obs.LatencyBuckets),
		GroupDetections:     &obs.Counter{},
		Incidents:           obs.NewCounterVec("action"),
		CapsApplied:         &obs.Counter{},
		CapsExpired:         &obs.Counter{},
		CapsReleased:        &obs.Counter{},
		CapsActive:          &obs.Gauge{},
		CapsAdopted:         &obs.Counter{},
		CapsOrphaned:        &obs.Counter{},
		SamplesQuarantined:  obs.NewCounterVec("reason"),
		SpecsComputed:       &obs.Counter{},
		SpecBacklog:         &obs.Gauge{},
		SampleToSpec:        obs.NewHistogram(obs.StalenessBuckets),
		SpecStaleness:       obs.NewHistogramVec(obs.StalenessBuckets, "job"),
		DetectToCap:         obs.NewHistogram(obs.ReactionBuckets),
	}
}

// DrainTo moves everything accumulated in m into dst and resets m.
// Gauges move as deltas (CapsActive only ever Incs/Decs, so the shared
// gauge converges on the fleet total); SpecBacklog is Set-based and
// only used by the spec builder, which is never sharded — its shard
// cell stays zero and the drain is a no-op.
func (m *Metrics) DrainTo(dst *Metrics) {
	if m == nil || dst == nil {
		return
	}
	m.SamplesObserved.Drain(dst.SamplesObserved)
	m.SamplesFiltered.Drain(dst.SamplesFiltered)
	m.Outliers.Drain(dst.Outliers)
	m.Anomalies.Drain(dst.Anomalies)
	m.AnalysesRun.Drain(dst.AnalysesRun)
	m.AnalysesRateLimited.Drain(dst.AnalysesRateLimited)
	m.CorrelationSeconds.Drain(dst.CorrelationSeconds)
	m.GroupDetections.Drain(dst.GroupDetections)
	m.Incidents.Drain(dst.Incidents)
	m.CapsApplied.Drain(dst.CapsApplied)
	m.CapsExpired.Drain(dst.CapsExpired)
	m.CapsReleased.Drain(dst.CapsReleased)
	m.CapsActive.Drain(dst.CapsActive)
	m.CapsAdopted.Drain(dst.CapsAdopted)
	m.CapsOrphaned.Drain(dst.CapsOrphaned)
	m.SamplesQuarantined.Drain(dst.SamplesQuarantined)
	m.SpecsComputed.Drain(dst.SpecsComputed)
	m.SampleToSpec.Drain(dst.SampleToSpec)
	m.SpecStaleness.Drain(dst.SpecStaleness)
	m.DetectToCap.Drain(dst.DetectToCap)
}

// SuspectRecord is the JSON rendering of one ranked suspect.
type SuspectRecord struct {
	Task        string  `json:"task"`
	Job         string  `json:"job"`
	Correlation float64 `json:"correlation"`
}

// IncidentRecord is the machine-readable rendering of an Incident:
// the schema of the forensics event stream ("incident" events) and of
// the admin /debug/incidents endpoint.
type IncidentRecord struct {
	Time             time.Time       `json:"time"`
	Machine          string          `json:"machine"`
	Victim           string          `json:"victim"`
	VictimJob        string          `json:"victim_job"`
	VictimCPI        float64         `json:"victim_cpi"`
	Threshold        float64         `json:"threshold"`
	Action           string          `json:"action"`
	Target           string          `json:"target,omitempty"`
	Quota            float64         `json:"quota,omitempty"`
	Until            *time.Time      `json:"until,omitempty"`
	Reason           string          `json:"reason,omitempty"`
	TopSuspects      []SuspectRecord `json:"top_suspects,omitempty"`
	GroupSize        int             `json:"group_size,omitempty"`
	GroupCorrelation float64         `json:"group_correlation,omitempty"`
	TraceID          string          `json:"trace_id,omitempty"`
	Identifier       string          `json:"identifier,omitempty"`
}

// maxRecordSuspects bounds the suspects carried in one record (the §6
// case studies list the top five).
const maxRecordSuspects = 5

// Record converts an Incident to its JSON-friendly form.
func (inc Incident) Record() IncidentRecord {
	rec := IncidentRecord{
		Time:       inc.Time,
		Machine:    inc.Machine,
		Victim:     inc.Victim.String(),
		VictimJob:  string(inc.VictimJob),
		VictimCPI:  inc.VictimCPI,
		Threshold:  inc.Threshold,
		Action:     inc.Decision.Action.String(),
		Reason:     inc.Decision.Reason,
		TraceID:    inc.TraceID,
		Identifier: inc.Identifier,
	}
	if inc.Decision.Action != ActionNone {
		rec.Target = inc.Decision.Target.String()
	}
	if inc.Decision.Action == ActionCap {
		rec.Quota = inc.Decision.Quota
		until := inc.Decision.Until
		rec.Until = &until
	}
	for i, s := range inc.Suspects {
		if i == maxRecordSuspects {
			break
		}
		rec.TopSuspects = append(rec.TopSuspects, SuspectRecord{
			Task:        s.Task.String(),
			Job:         string(s.Job),
			Correlation: s.Correlation,
		})
	}
	if inc.Group != nil {
		rec.GroupSize = len(inc.Group.Members)
		rec.GroupCorrelation = inc.Group.Correlation
	}
	return rec
}

// IncidentRecords converts a slice of incidents (as returned by
// Manager.Incidents) for JSON endpoints.
func IncidentRecords(incs []Incident) []IncidentRecord {
	out := make([]IncidentRecord, len(incs))
	for i, inc := range incs {
		out[i] = inc.Record()
	}
	return out
}

package core

import (
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

// Correlation implements the paper's antagonist-correlation score
// (§4.2) between a victim's CPI samples and one suspect's CPU usage,
// over time-aligned sample pairs:
//
//	normalize u so Σu = 1, then for each aligned pair (cᵢ, uᵢ):
//	  cᵢ > threshold: corr += uᵢ · (1 − threshold/cᵢ)
//	  cᵢ < threshold: corr += uᵢ · (cᵢ/threshold − 1)
//
// The result lies in [−1, 1]: positive when the suspect's CPU spikes
// coincide with victim CPI above its outlier threshold, negative when
// the suspect runs hot while the victim is fine. Each call costs
// O(n) — the paper reports ≈100 µs per analysis.
//
// Pairs where cᵢ equals the threshold contribute nothing. If the
// suspect used no CPU at all in the window the score is 0.
func Correlation(victimCPI, suspectUsage []float64, threshold float64) float64 {
	n := len(victimCPI)
	if n == 0 || len(suspectUsage) != n || threshold <= 0 {
		return 0
	}
	// Normalize usage over the pairs the scoring loop actually visits
	// (u > 0 AND c > 0): a pair skipped for a non-positive CPI must not
	// leave its usage mass in the denominator, or hostile/zero CPI
	// values deflate every scored pair's weight toward 0.
	var usum float64
	for i, u := range suspectUsage {
		if u > 0 && victimCPI[i] > 0 {
			usum += u
		}
	}
	if usum == 0 {
		return 0
	}
	var corr float64
	for i := 0; i < n; i++ {
		c := victimCPI[i]
		u := suspectUsage[i]
		if u <= 0 || c <= 0 {
			continue
		}
		u /= usum
		switch {
		case c > threshold:
			corr += u * (1 - threshold/c)
		case c < threshold:
			corr += u * (c/threshold - 1)
		}
	}
	return corr
}

// Suspect is one candidate antagonist with its correlation score.
type Suspect struct {
	Task        model.TaskID
	Job         model.JobName
	Class       model.JobClass
	Priority    model.Priority
	Correlation float64
}

// SuspectInput describes one co-located task offered to the ranker.
type SuspectInput struct {
	Task     model.TaskID
	Job      model.JobName
	Class    model.JobClass
	Priority model.Priority
	// Usage is the task's CPU-usage time series.
	Usage *timeseries.Series
}

// RankSuspects scores every co-located suspect against the victim's
// CPI series over [now−window, now) and returns suspects in
// descending correlation order. threshold is the victim's abnormal
// CPI threshold (spec mean + 2σ); period is the sampling period used
// for time alignment.
//
// All suspects are returned (the §6 case studies list the top-5
// including latency-sensitive ones); filtering by the correlation
// threshold and by throttle eligibility is the enforcer's job.
func RankSuspects(victimCPI *timeseries.Series, threshold float64,
	suspects []SuspectInput, now time.Time, window, period time.Duration) []Suspect {

	from := now.Add(-window)
	victimWindow := timeseries.New()
	for _, p := range victimCPI.Window(from, now) {
		_ = victimWindow.Append(p.Time, p.Value)
	}

	out := make([]Suspect, 0, len(suspects))
	for _, s := range suspects {
		if s.Usage == nil {
			continue
		}
		suspectWindow := timeseries.New()
		for _, p := range s.Usage.Window(from, now) {
			_ = suspectWindow.Append(p.Time, p.Value)
		}
		cpi, usage := timeseries.Align(victimWindow, suspectWindow, period)
		out = append(out, Suspect{
			Task:        s.Task,
			Job:         s.Job,
			Class:       s.Class,
			Priority:    s.Priority,
			Correlation: Correlation(cpi, usage, threshold),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Correlation != out[j].Correlation {
			return out[i].Correlation > out[j].Correlation
		}
		return out[i].Task.String() < out[j].Task.String() // stable tie-break
	})
	return out
}

// TopSuspects returns the best k suspects whose correlation meets
// minCorrelation, preserving rank order.
func TopSuspects(ranked []Suspect, k int, minCorrelation float64) []Suspect {
	out := make([]Suspect, 0, k)
	for _, s := range ranked {
		if len(out) == k {
			break
		}
		if s.Correlation >= minCorrelation {
			out = append(out, s)
		}
	}
	return out
}

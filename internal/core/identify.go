package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

// This file makes antagonist identification pluggable. The paper ships
// exactly one algorithm — the §4.2 cross-correlation with its 0.35
// threshold — and reports it noisy in production; PANDA is Google's
// own successor, built because the correlator misfires under
// measurement noise. The Identifier interface turns every future
// identification idea into a one-file plugin scored by the
// internal/experiments A/B testbed against the interference model's
// ground-truth antagonists.

// Identifier names accepted by NewIdentifier and Params.Identifier.
const (
	// IdentifierCorrelation is the paper's §4.2 cross-correlation
	// scorer (the default).
	IdentifierCorrelation = "correlation"
	// IdentifierPanda is the PANDA-style noise-resilient scorer:
	// robust z-score normalization of victim CPI against the spec's
	// Welford moments plus per-colocation evidence accumulated across
	// analysis rounds.
	IdentifierPanda = "panda"
)

// IdentifierNames lists the registered identifier names, for flag
// help text and error messages.
func IdentifierNames() []string {
	return []string{IdentifierCorrelation, IdentifierPanda}
}

// IdentifyInput is one identification round's evidence: the anomalous
// victim, its CPI history, the spec moments it was judged against, and
// the co-located suspects with their CPU-usage histories.
type IdentifyInput struct {
	// Victim is the anomalous task whose antagonist is sought.
	Victim model.TaskID
	// VictimCPI is the victim's recorded CPI series.
	VictimCPI *timeseries.Series
	// Threshold is the victim's abnormal-CPI threshold
	// (spec mean + OutlierSigma·σ).
	Threshold float64
	// SpecMean / SpecStddev are the victim spec's Welford moments
	// (zero when the spec carries none; identifiers must cope).
	SpecMean   float64
	SpecStddev float64
	// Now is the analysis time; the look-back window is [Now−Window, Now).
	Now    time.Time
	Window time.Duration
	// Period is the sampling period used for time alignment.
	Period time.Duration
	// Suspects are the co-located candidate antagonists.
	Suspects []SuspectInput
}

// Identifier ranks a victim's co-located suspects. Implementations
// must return every scoreable suspect in descending score order with a
// deterministic tie-break (enforcement filtering is the enforcer's
// job, exactly as with RankSuspects), and must be deterministic: the
// same input sequence yields the same output sequence, regardless of
// goroutine interleaving elsewhere. Stateful implementations key any
// cross-round state by task identity only — never by wall-clock or map
// iteration order.
type Identifier interface {
	// Name reports the registered identifier name; incidents are tagged
	// with it.
	Name() string
	// Identify scores and ranks the suspects for one analysis round.
	Identify(in IdentifyInput) []Suspect
}

// NewIdentifier builds the named identifier with tunables from p. The
// empty name selects the default (IdentifierCorrelation). Unknown
// names are an error — callers parsing flags should surface it;
// NewManager treats it as a configuration bug and panics.
func NewIdentifier(name string, p Params) (Identifier, error) {
	switch name {
	case "", IdentifierCorrelation:
		return CorrelationIdentifier{}, nil
	case IdentifierPanda:
		return NewPandaIdentifier(p), nil
	}
	return nil, fmt.Errorf("core: unknown identifier %q (have: %s)",
		name, strings.Join(IdentifierNames(), ", "))
}

// CorrelationIdentifier is the reference implementation: the paper's
// §4.2 usage-weighted cross-correlation, unchanged. It is stateless —
// each round scores the current window in isolation.
type CorrelationIdentifier struct{}

// Name implements Identifier.
func (CorrelationIdentifier) Name() string { return IdentifierCorrelation }

// Identify implements Identifier by delegating to RankSuspects.
func (CorrelationIdentifier) Identify(in IdentifyInput) []Suspect {
	return RankSuspects(in.VictimCPI, in.Threshold, in.Suspects, in.Now, in.Window, in.Period)
}

// PANDA-style tunables. The per-round score and the accumulated
// evidence both live in [−1, 1], so PandaIdentifier scores are
// directly comparable to CorrelationThreshold.
const (
	// pandaAlpha is the EWMA weight of the newest round. 0.3 is chosen
	// so a single perfect window (score 0.3) stays below the 0.35
	// reporting threshold — one noisy window neither convicts nor
	// acquits — while two consistent windows (≈0.51) convict.
	pandaAlpha = 0.3
	// pandaSaturationSigmas is how many spec standard deviations above
	// the outlier bar saturate the per-pair evidence at 1: a 2σ spec
	// threshold reaches full evidence at 6σ. Symmetrically, evidence
	// bottoms out at −1 the same distance below the bar, so a suspect
	// running hot while the victim sits at its spec mean accrues
	// negative evidence.
	pandaSaturationSigmas = 4.0
)

// pandaPair keys cross-round evidence by colocation: the same suspect
// can be innocent next to one victim and guilty next to another.
type pandaPair struct {
	victim  model.TaskID
	suspect model.TaskID
}

type pandaEvidence struct {
	score float64
	at    time.Time
}

// PandaIdentifier is a PANDA-style noise-resilient scorer. Two changes
// versus the §4.2 correlator:
//
//  1. Noise-aware normalization: each aligned victim-CPI value is
//     turned into a robust z-score against the spec's Welford moments
//     ((c − mean)/σ), then into saturating evidence in [−1, 1] centred
//     on the outlier bar — instead of the correlator's single hard
//     threshold, where a value at 1.01× threshold counts like one at
//     10×.
//  2. Evidence accumulation: per-round scores are folded into an EWMA
//     keyed by victim×suspect pair, decayed with a half-life of the
//     correlation window, so conviction needs consistency across
//     rounds and one chance-aligned window cannot convict an innocent
//     bursty co-tenant.
//
// Determinism: evidence is keyed lookup only — output order never
// depends on map iteration — and decay uses analysis timestamps, never
// the wall clock.
type PandaIdentifier struct {
	outlierSigma float64
	halfLife     time.Duration

	mu       sync.Mutex
	evidence map[pandaPair]pandaEvidence
}

// NewPandaIdentifier builds a PANDA-style identifier with tunables
// from p (sanitized).
func NewPandaIdentifier(p Params) *PandaIdentifier {
	p = p.Sanitize()
	return &PandaIdentifier{
		outlierSigma: p.OutlierSigma,
		halfLife:     p.CorrelationWindow,
		evidence:     make(map[pandaPair]pandaEvidence),
	}
}

// Name implements Identifier.
func (pi *PandaIdentifier) Name() string { return IdentifierPanda }

// Identify implements Identifier.
func (pi *PandaIdentifier) Identify(in IdentifyInput) []Suspect {
	from := in.Now.Add(-in.Window)
	victimWindow := timeseries.New()
	for _, p := range in.VictimCPI.Window(from, in.Now) {
		_ = victimWindow.Append(p.Time, p.Value)
	}
	sd := in.SpecStddev
	if sd <= 0 && pi.outlierSigma > 0 && in.Threshold > in.SpecMean {
		// The detector's threshold is spec mean + OutlierSigma·σ, so a
		// spec that arrived without moments still implies them.
		sd = (in.Threshold - in.SpecMean) / pi.outlierSigma
	}

	out := make([]Suspect, 0, len(in.Suspects))
	pi.mu.Lock()
	defer pi.mu.Unlock()
	for _, s := range in.Suspects {
		if s.Usage == nil {
			continue
		}
		suspectWindow := timeseries.New()
		for _, p := range s.Usage.Window(from, in.Now) {
			_ = suspectWindow.Append(p.Time, p.Value)
		}
		cpi, usage := timeseries.Align(victimWindow, suspectWindow, in.Period)
		round := pi.roundScore(cpi, usage, in.Threshold, in.SpecMean, sd)

		key := pandaPair{victim: in.Victim, suspect: s.Task}
		score := pandaAlpha * round // unseen pairs start from zero evidence
		if prev, ok := pi.evidence[key]; ok {
			w := prev.score
			if age := in.Now.Sub(prev.at); age > 0 && pi.halfLife > 0 {
				w *= math.Pow(0.5, float64(age)/float64(pi.halfLife))
			}
			score = (1-pandaAlpha)*w + pandaAlpha*round
		}
		pi.evidence[key] = pandaEvidence{score: score, at: in.Now}
		out = append(out, Suspect{
			Task:        s.Task,
			Job:         s.Job,
			Class:       s.Class,
			Priority:    s.Priority,
			Correlation: score,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Correlation != out[j].Correlation {
			return out[i].Correlation > out[j].Correlation
		}
		return out[i].Task.String() < out[j].Task.String() // stable tie-break
	})
	return out
}

// roundScore computes one window's usage-weighted evidence in [−1, 1].
// With no usable spec moments it falls back to the §4.2 score for the
// round — evidence accumulation still applies on top.
func (pi *PandaIdentifier) roundScore(cpi, usage []float64, threshold, mean, sd float64) float64 {
	n := len(cpi)
	if n == 0 || len(usage) != n {
		return 0
	}
	if sd <= 0 {
		return Correlation(cpi, usage, threshold)
	}
	// Normalize usage over the pairs actually scored, exactly as
	// Correlation does post-fix.
	var usum float64
	for i, u := range usage {
		if u > 0 && cpi[i] > 0 {
			usum += u
		}
	}
	if usum == 0 {
		return 0
	}
	span := pandaSaturationSigmas
	var score float64
	for i := 0; i < n; i++ {
		c, u := cpi[i], usage[i]
		if u <= 0 || c <= 0 {
			continue
		}
		z := (c - mean) / sd
		e := (z - pi.outlierSigma) / span
		if e > 1 {
			e = 1
		} else if e < -1 {
			e = -1
		}
		score += (u / usum) * e
	}
	return score
}

// Forget drops all evidence involving task, as victim or suspect.
// Manager.TaskExited calls this so evidence never leaks across task
// lifetimes (a restarted task index must start from zero).
func (pi *PandaIdentifier) Forget(task model.TaskID) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	for k := range pi.evidence {
		if k.victim == task || k.suspect == task {
			delete(pi.evidence, k)
		}
	}
}

// EvidencePairs reports how many victim×suspect pairs currently hold
// evidence (state-size introspection for tests and debugging).
func (pi *PandaIdentifier) EvidencePairs() int {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	return len(pi.evidence)
}

package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

// buildPopulatedBuilder seeds a builder with njobs jobs across both
// platforms, one recomputed interval of history plus half an interval
// of pending samples — the state mix a live reshard actually moves.
func buildPopulatedBuilder(t *testing.T, njobs int, seed int64) *SpecBuilder {
	t.Helper()
	b := NewSpecBuilder(DefaultParams())
	for j := 0; j < njobs; j++ {
		job := model.JobName(fmt.Sprintf("job-%02d", j))
		pl := model.PlatformA
		if j%2 == 1 {
			pl = model.PlatformB
		}
		feedSamples(t, b, job, pl, 6, 80, 1.0+0.1*float64(j), 0.1, seed+int64(j))
	}
	b.Recompute(day0.Add(24 * time.Hour))
	for j := 0; j < njobs; j++ {
		job := model.JobName(fmt.Sprintf("job-%02d", j))
		pl := model.PlatformA
		if j%2 == 1 {
			pl = model.PlatformB
		}
		feedSamples(t, b, job, pl, 6, 30, 1.05+0.1*float64(j), 0.1, seed+100+int64(j))
	}
	return b
}

// TestHandoffSpecEquivalence is the resharding correctness property:
// export a random subset of one builder's keys into a second builder,
// recompute both at the same instant, and the union of their spec
// tables must be byte-identical (Welford moments included) to the
// undisturbed builder's table — not just this interval but the next
// one too, proving history weights moved intact.
func TestHandoffSpecEquivalence(t *testing.T) {
	const njobs = 12
	for trial := int64(0); trial < 5; trial++ {
		whole := buildPopulatedBuilder(t, njobs, 7000+trial)
		donor := buildPopulatedBuilder(t, njobs, 7000+trial)
		dest := NewSpecBuilder(DefaultParams())

		keys := donor.Keys()
		if len(keys) != njobs {
			t.Fatalf("trial %d: builder holds %d keys, want %d", trial, len(keys), njobs)
		}
		rng := rand.New(rand.NewSource(900 + trial))
		var moved []model.SpecKey
		for _, k := range keys {
			if rng.Float64() < 0.5 {
				moved = append(moved, k)
			}
		}
		now := day0.Add(36 * time.Hour)
		frame := donor.ExportKeys(moved, now)
		// The frame crosses a process boundary in real resharding; prove
		// JSON round-trips it exactly.
		data, err := json.Marshal(frame)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Checkpoint
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatal(err)
		}
		if err := dest.ImportCheckpoint(decoded); err != nil {
			t.Fatal(err)
		}
		if got := donor.KeyCount() + dest.KeyCount(); got != njobs {
			t.Fatalf("trial %d: keys split %d+%d, want %d total", trial, donor.KeyCount(), dest.KeyCount(), njobs)
		}

		recompute := day0.Add(48 * time.Hour)
		wantSpecs := whole.Recompute(recompute)
		gotSpecs := mergeSpecs(donor.Recompute(recompute), dest.Recompute(recompute))
		wantJSON, _ := json.Marshal(wantSpecs)
		gotJSON, _ := json.Marshal(gotSpecs)
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("trial %d: specs diverge after handoff\nwant: %s\ngot:  %s", trial, wantJSON, gotJSON)
		}
		if len(wantSpecs) == 0 {
			t.Fatal("no specs published; test is vacuous")
		}

		// Next interval: only history decay drives the specs now.
		later := day0.Add(72 * time.Hour)
		wantJSON, _ = json.Marshal(whole.Recompute(later))
		gotJSON, _ = json.Marshal(mergeSpecs(donor.Recompute(later), dest.Recompute(later)))
		if string(wantJSON) != string(gotJSON) {
			t.Fatalf("trial %d: specs diverge one interval after handoff\nwant: %s\ngot:  %s", trial, wantJSON, gotJSON)
		}
	}
}

// mergeSpecs merges per-shard spec slices into one table sorted by
// (job, platform) — the same order a single builder publishes.
func mergeSpecs(parts ...[]model.Spec) []model.Spec {
	var out []model.Spec
	for _, p := range parts {
		out = append(out, p...)
	}
	sortSpecs(out)
	return out
}

func sortSpecs(specs []model.Spec) {
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0; j-- {
			a, b := specs[j-1], specs[j]
			if a.Job < b.Job || (a.Job == b.Job && a.Platform <= b.Platform) {
				break
			}
			specs[j-1], specs[j] = b, a
		}
	}
}

// TestHandoffImportCollisionRejected: importing a key the destination
// already holds must fail atomically — no partial merge.
func TestHandoffImportCollisionRejected(t *testing.T) {
	donor := buildPopulatedBuilder(t, 4, 1)
	dest := buildPopulatedBuilder(t, 4, 2) // same key space: every key collides
	before := dest.Checkpoint(day0)
	frame := donor.ExportKeys(donor.Keys()[:2], day0.Add(30*time.Hour))
	if err := dest.ImportCheckpoint(frame); err == nil {
		t.Fatal("import over existing keys succeeded; ownership would be split across shards")
	}
	after := dest.Checkpoint(day0)
	bj, _ := json.Marshal(before)
	aj, _ := json.Marshal(after)
	if string(bj) != string(aj) {
		t.Error("failed import mutated the destination builder")
	}
}

// TestHandoffExportUnknownKeys: exporting keys the builder never saw
// yields an empty frame and leaves the builder intact.
func TestHandoffExportUnknownKeys(t *testing.T) {
	b := buildPopulatedBuilder(t, 3, 5)
	n := b.KeyCount()
	cp := b.ExportKeys([]model.SpecKey{{Job: "nope", Platform: model.PlatformA}}, day0)
	if len(cp.History) != 0 || len(cp.Pending) != 0 || len(cp.Specs) != 0 {
		t.Errorf("export of unknown key carried state: %+v", cp)
	}
	if b.KeyCount() != n {
		t.Errorf("export of unknown key shrank the builder: %d -> %d keys", n, b.KeyCount())
	}
}

// TestHandoffImportAdoptsCadence: a fresh shard must inherit the
// donor's LastRecompute from the frame (so all shards stay on one
// recompute schedule), while a shard that already recomputed keeps its
// own clock.
func TestHandoffImportAdoptsCadence(t *testing.T) {
	donor := buildPopulatedBuilder(t, 2, 9)
	frame := donor.ExportKeys(donor.Keys()[:1], day0.Add(30*time.Hour))
	fresh := NewSpecBuilder(DefaultParams())
	if err := fresh.ImportCheckpoint(frame); err != nil {
		t.Fatal(err)
	}
	if got := fresh.LastRecompute(); !got.Equal(day0.Add(24 * time.Hour)) {
		t.Errorf("fresh importer LastRecompute = %v, want donor's %v", got, day0.Add(24*time.Hour))
	}
	veteran := NewSpecBuilder(DefaultParams())
	veteran.Recompute(day0.Add(26 * time.Hour))
	frame2 := donor.ExportKeys(donor.Keys(), day0.Add(30*time.Hour))
	if err := veteran.ImportCheckpoint(frame2); err != nil {
		t.Fatal(err)
	}
	if got := veteran.LastRecompute(); !got.Equal(day0.Add(26 * time.Hour)) {
		t.Errorf("veteran importer LastRecompute = %v, want its own %v", got, day0.Add(26*time.Hour))
	}
}

// FuzzHandoffImport throws arbitrary bytes at the handoff frame
// decoder: whatever arrives, no panic, failed imports leave the
// destination untouched, and successful ones leave it serviceable.
func FuzzHandoffImport(f *testing.F) {
	b := NewSpecBuilder(DefaultParams())
	for task := 0; task < 6; task++ {
		for i := 0; i < 90; i++ {
			b.AddSample(model.Sample{
				Job: "seed", Task: model.TaskID{Job: "seed", Index: task},
				Platform: model.PlatformA, Timestamp: day0, CPUUsage: 1, CPI: 1.1,
			})
		}
	}
	b.Recompute(day0.Add(24 * time.Hour))
	seed, _ := json.Marshal(b.ExportKeys(b.Keys(), day0.Add(25*time.Hour)))
	f.Add(seed)
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"pending":[{"job":"x","cpi":{"n":-1}}]}`))
	f.Add([]byte(`{"version":1,"history":[{"job":"x","weight":1},{"job":"x","weight":2}]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var cp Checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return
		}
		dest := NewSpecBuilder(DefaultParams())
		feedSamples(t, dest, "resident", model.PlatformB, 6, 20, 1.4, 0.1, 3)
		residentPending := dest.PendingSamples(model.SpecKey{Job: "resident", Platform: model.PlatformB})
		if err := dest.ImportCheckpoint(cp); err != nil {
			if got := dest.PendingSamples(model.SpecKey{Job: "resident", Platform: model.PlatformB}); got != residentPending {
				t.Fatalf("failed import mutated destination: pending %d -> %d", residentPending, got)
			}
			return
		}
		// Builder must stay serviceable after any accepted frame.
		dest.Recompute(day0.Add(48 * time.Hour))
		if _, err := json.Marshal(dest.Checkpoint(day0.Add(49 * time.Hour))); err != nil {
			t.Fatalf("re-checkpoint failed: %v", err)
		}
	})
}

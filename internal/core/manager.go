package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/timeseries"
)

// Incident records one detected performance-isolation event: a victim
// whose CPI went anomalous, the ranked suspects, and what was done.
// Incidents are what CPI² logs for offline (Dremel-style) forensics
// and what operators act on during conservative rollout.
type Incident struct {
	Time      time.Time
	Machine   string
	Victim    model.TaskID
	VictimJob model.JobName
	VictimCPI float64
	Threshold float64
	Suspects  []Suspect // ranked, descending correlation
	Decision  Decision
	// Group is set when GroupDetection found an antagonist group after
	// no single suspect qualified; GroupDecisions records the per-
	// member actions.
	Group          *GroupSuspect
	GroupDecisions []Decision
	// TraceID is the causal-tracing context of the sample batch that
	// triggered the incident, joining it to the obs/trace span stores
	// and the forensics table ("why was this task capped?").
	TraceID string
	// Identifier names the identification algorithm that ranked the
	// suspects (see NewIdentifier), so incident streams mixing
	// algorithms — A/B rollouts, per-cell configs — stay attributable.
	Identifier string
}

// Manager is the per-machine CPI² engine: it ingests the local
// sampler's measurements, maintains per-task CPI and CPU-usage
// history, runs the detector, and — when a task goes anomalous and the
// per-machine analysis rate limit allows — ranks suspects and lets the
// enforcer act. It is the component labelled "agent" in Figure 6,
// minus the transport (package agent adds that).
type Manager struct {
	params   Params
	machine  string
	detector *Detector
	enforcer *Enforcer
	// identifier ranks suspects each analysis round (Params.Identifier
	// selects it). identifierForget is non-nil when the identifier
	// keeps per-task state that must drop on task exit.
	identifier       Identifier
	identifierForget func(model.TaskID)
	metrics          *Metrics     // never nil; zero Metrics = uninstrumented
	events           EventSink    // never nil; nopSink = unlogged
	tracer           *trace.Store // nil = untraced

	mu           sync.Mutex
	jobs         map[model.JobName]model.Job
	cpi          map[model.TaskID]*timeseries.Series
	usage        map[model.TaskID]*timeseries.Series
	lastAnalysis time.Time
	incidents    []Incident
	maxIncidents int
}

// NewManager creates a per-machine manager named machine, applying
// caps through capper.
func NewManager(machine string, p Params, capper Capper) *Manager {
	p = p.Sanitize()
	ident, err := NewIdentifier(p.Identifier, p)
	if err != nil {
		// Identifier names come from flags or literals; daemons validate
		// them before building agents, so reaching here is a bug.
		panic(err)
	}
	m := &Manager{
		params:       p,
		machine:      machine,
		detector:     NewDetector(p),
		enforcer:     NewEnforcer(p, capper),
		identifier:   ident,
		metrics:      &Metrics{},
		events:       nopSink{},
		jobs:         make(map[model.JobName]model.Job),
		cpi:          make(map[model.TaskID]*timeseries.Series),
		usage:        make(map[model.TaskID]*timeseries.Series),
		maxIncidents: 4096,
	}
	if f, ok := ident.(interface{ Forget(model.TaskID) }); ok {
		m.identifierForget = f.Forget
	}
	return m
}

// SetMetrics instruments the manager (and its enforcer) with m. A nil
// m disables instrumentation. The field write is locked — Observe and
// analyse read m.metrics under m.mu from the agent's tick goroutine,
// so the setter must not race them.
func (m *Manager) SetMetrics(mm *Metrics) {
	if mm == nil {
		mm = &Metrics{}
	}
	m.mu.Lock()
	m.metrics = mm
	m.mu.Unlock()
	m.enforcer.SetMetrics(mm)
}

// SetEvents directs the manager's (and its enforcer's) structured
// forensics events — incidents and cap lifecycle — to sink. A nil
// sink disables event logging. Locked for the same reason as
// SetMetrics.
func (m *Manager) SetEvents(sink EventSink) {
	if sink == nil {
		sink = nopSink{}
	}
	m.mu.Lock()
	m.events = sink
	m.mu.Unlock()
	m.enforcer.SetEvents(sink)
}

// SetTrace directs the manager's causal spans (detect, decision) to
// store. Nil disables tracing (the default). Locked like SetMetrics —
// Observe/analyse snapshot the field under m.mu.
func (m *Manager) SetTrace(store *trace.Store) {
	m.mu.Lock()
	m.tracer = store
	m.mu.Unlock()
}

// RegisterJob installs job metadata for tasks on this machine. The
// cluster scheduler calls this when placing a task.
func (m *Manager) RegisterJob(j model.Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.Name] = j
}

// UpdateSpec forwards a pushed CPI spec to the local detector.
func (m *Manager) UpdateSpec(s model.Spec) { m.detector.UpdateSpec(s) }

// Detector exposes the manager's detector (read-mostly; used by tests
// and by the agent for spec introspection).
func (m *Manager) Detector() *Detector { return m.detector }

// Enforcer exposes the manager's enforcer for operator tooling
// (manual capping, release-all).
func (m *Manager) Enforcer() *Enforcer { return m.enforcer }

// TaskExited clears all state for a departed task, including any
// active cap on it — an exited antagonist's cap must drop out of
// ActiveCaps (and the journal) immediately, not linger until expiry
// failing to uncap a cgroup that no longer exists.
func (m *Manager) TaskExited(task model.TaskID) {
	m.mu.Lock()
	delete(m.cpi, task)
	delete(m.usage, task)
	m.mu.Unlock()
	m.detector.Forget(task)
	if m.identifierForget != nil {
		m.identifierForget(task)
	}
	m.enforcer.TaskExited(task)
}

// SetJournal directs the enforcer's actuation records to j.
func (m *Manager) SetJournal(j CapJournal) { m.enforcer.SetJournal(j) }

// Observe ingests one CPI sample and runs the full local loop:
// record → detect → (maybe) correlate → (maybe) enforce. It returns a
// non-nil Incident when an anomaly was analysed this round.
func (m *Manager) Observe(s model.Sample) *Incident {
	m.mu.Lock()
	cs, ok := m.cpi[s.Task]
	if !ok {
		cs = timeseries.NewBounded(2*m.params.CorrelationWindow, 0)
		m.cpi[s.Task] = cs
	}
	us, ok := m.usage[s.Task]
	if !ok {
		us = timeseries.NewBounded(2*m.params.CorrelationWindow, 0)
		m.usage[s.Task] = us
	}
	_ = cs.Append(s.Timestamp, s.CPI)
	_ = us.Append(s.Timestamp, s.CPUUsage)
	metrics, tracer := m.metrics, m.tracer // snapshot under m.mu; setters may race otherwise
	m.mu.Unlock()

	a := m.detector.Observe(s)
	metrics.SamplesObserved.Inc()
	if a.Filtered {
		metrics.SamplesFiltered.Inc()
	}
	if a.Outlier {
		metrics.Outliers.Inc()
	}
	if a.HasSpec && a.SpecAge > 0 {
		metrics.SpecStaleness.With(string(s.Job)).Observe(a.SpecAge.Seconds())
	}
	if !a.Anomalous {
		return nil
	}
	metrics.Anomalies.Inc()
	tracer.Add(trace.Span{
		TraceID:      s.TraceID,
		Stage:        trace.StageDetect,
		Machine:      m.machine,
		Key:          s.Task.String(),
		Time:         s.Timestamp,
		QueueSeconds: a.SpecAge.Seconds(),
		Detail:       fmt.Sprintf("cpi %.3f > threshold %.3f", s.CPI, a.Threshold),
	})
	return m.analyse(s, a, tracer)
}

// analyse runs one rate-limited antagonist-identification round.
func (m *Manager) analyse(s model.Sample, a Assessment, tracer *trace.Store) *Incident {
	m.mu.Lock()
	metrics, events := m.metrics, m.events // snapshot under m.mu
	// §4.2: at most one analysis per AnalysisRateLimit per machine, so
	// the analysis itself never becomes the antagonist. A negative delta
	// means the agent's clock moved backwards (a skew fault landing, or
	// NTP stepping the clock): allow the analysis and reset the anchor,
	// otherwise every round is suppressed until the clock catches back
	// up to the pre-skew lastAnalysis.
	if !m.lastAnalysis.IsZero() {
		if delta := s.Timestamp.Sub(m.lastAnalysis); delta >= 0 && delta < m.params.AnalysisRateLimit {
			m.mu.Unlock()
			metrics.AnalysesRateLimited.Inc()
			return nil
		}
	}
	m.lastAnalysis = s.Timestamp
	metrics.AnalysesRun.Inc()

	victimCPI := m.cpi[s.Task]
	suspects := make([]SuspectInput, 0, len(m.usage))
	for task, usage := range m.usage {
		if task == s.Task {
			continue
		}
		in := SuspectInput{Task: task, Job: task.Job, Usage: usage}
		if j, ok := m.jobs[task.Job]; ok {
			in.Class = j.Class
			in.Priority = j.Priority
		}
		suspects = append(suspects, in)
	}
	victimJob, haveJob := m.jobs[s.Job]
	m.mu.Unlock()
	if !haveJob {
		victimJob = model.Job{Name: s.Job, Class: model.ClassLatencySensitive}
	}

	now := s.Timestamp.Add(time.Nanosecond)
	// Wall-clock reads only when the latency histogram is actually
	// wired — uninstrumented runs pay nothing for timing.
	var wallStart time.Time
	var wallSeconds float64
	timed := metrics.CorrelationSeconds != nil
	if timed {
		wallStart = time.Now()
	}
	ranked := m.identifier.Identify(IdentifyInput{
		Victim:     s.Task,
		VictimCPI:  victimCPI,
		Threshold:  a.Threshold,
		SpecMean:   a.SpecMean,
		SpecStddev: a.SpecStddev,
		Now:        now,
		Window:     m.params.CorrelationWindow,
		Period:     m.params.SamplingInterval,
		Suspects:   suspects,
	})
	if timed {
		wallSeconds = time.Since(wallStart).Seconds()
		metrics.CorrelationSeconds.Observe(wallSeconds)
	}
	decision := m.enforcer.Decide(s.Timestamp, s.Task, victimJob, ranked, m.resolveJob)

	// No individual culprit: try the group hypothesis (§4.2 future
	// work) — several tasks taking turns can hide below the threshold
	// individually while their union explains the victim's CPI.
	var group *GroupSuspect
	var groupDecisions []Decision
	if decision.Action == ActionNone && m.params.GroupDetection {
		g := FindAntagonistGroup(victimCPI, a.Threshold, suspects,
			now, m.params.CorrelationWindow, m.params.SamplingInterval, m.params.MaxGroupSize)
		if len(g.Members) >= 2 && g.Correlation >= m.params.CorrelationThreshold {
			group = &g
			groupDecisions = m.enforcer.DecideGroup(s.Timestamp, s.Task, victimJob, g, m.resolveJob)
			for _, d := range groupDecisions {
				if d.Action == ActionCap {
					decision = d // headline decision: the first group cap
					break
				}
			}
		}
	}

	inc := &Incident{
		Time:           s.Timestamp,
		Machine:        m.machine,
		Victim:         s.Task,
		VictimJob:      s.Job,
		VictimCPI:      s.CPI,
		Threshold:      a.Threshold,
		Suspects:       ranked,
		Decision:       decision,
		Group:          group,
		GroupDecisions: groupDecisions,
		TraceID:        s.TraceID,
		Identifier:     m.identifier.Name(),
	}
	if group != nil {
		metrics.GroupDetections.Inc()
	}
	metrics.Incidents.With(decision.Action.String()).Inc()
	// Detect-to-cap reaction time: first outlier of the episode → this
	// cap decision, in simulation time.
	var reaction time.Duration
	if decision.Action == ActionCap && !a.FirstOutlierAt.IsZero() {
		if reaction = s.Timestamp.Sub(a.FirstOutlierAt); reaction >= 0 {
			metrics.DetectToCap.Observe(reaction.Seconds())
		}
	}
	detail := decision.Action.String()
	if decision.Action != ActionNone {
		detail = fmt.Sprintf("%s %s", detail, decision.Target)
	}
	tracer.Add(trace.Span{
		TraceID:      s.TraceID,
		Stage:        trace.StageDecision,
		Machine:      m.machine,
		Key:          s.Task.String(),
		Time:         s.Timestamp,
		QueueSeconds: reaction.Seconds(),
		ProcSeconds:  wallSeconds,
		Detail:       detail,
	})
	events.Emit(inc.Time, "incident", inc.Record())
	m.mu.Lock()
	m.incidents = append(m.incidents, *inc)
	if len(m.incidents) > m.maxIncidents {
		m.incidents = m.incidents[len(m.incidents)-m.maxIncidents:]
	}
	m.mu.Unlock()
	return inc
}

func (m *Manager) resolveJob(name model.JobName) (model.Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[name]
	return j, ok
}

// Tick expires caps; call once per simulated second (or wall second).
func (m *Manager) Tick(now time.Time) []model.TaskID {
	return m.enforcer.Tick(now)
}

// Incidents returns a copy of the recorded incidents.
func (m *Manager) Incidents() []Incident {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Incident, len(m.incidents))
	copy(out, m.incidents)
	return out
}

// UsageSeries returns the recorded CPU-usage series for a task (nil
// if unknown); the experiment harness uses it for case-study plots.
func (m *Manager) UsageSeries(task model.TaskID) *timeseries.Series {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usage[task]
}

// CPISeries returns the recorded CPI series for a task (nil if
// unknown).
func (m *Manager) CPISeries(task model.TaskID) *timeseries.Series {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cpi[task]
}

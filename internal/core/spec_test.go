package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

var day0 = time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// feedSamples adds n samples per task for nt tasks of job on platform,
// drawing CPI from N(mean, sd).
func feedSamples(t *testing.T, b *SpecBuilder, job model.JobName, pl model.Platform,
	nt, n int, mean, sd float64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for task := 0; task < nt; task++ {
		for i := 0; i < n; i++ {
			cpi := mean + sd*rng.NormFloat64()
			if cpi < 0.1 {
				cpi = 0.1
			}
			err := b.AddSample(model.Sample{
				Job:       job,
				Task:      model.TaskID{Job: job, Index: task},
				Platform:  pl,
				Timestamp: day0.Add(time.Duration(i) * time.Minute),
				CPUUsage:  1.0,
				CPI:       cpi,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSpecBuilderBasic(t *testing.T) {
	b := NewSpecBuilder(DefaultParams())
	feedSamples(t, b, "jobA", model.PlatformA, 10, 200, 0.88, 0.09, 1)
	key := model.SpecKey{Job: "jobA", Platform: model.PlatformA}
	if got := b.PendingSamples(key); got != 2000 {
		t.Errorf("pending = %d", got)
	}
	specs := b.Recompute(day0.Add(24 * time.Hour))
	if len(specs) != 1 {
		t.Fatalf("specs = %d, want 1", len(specs))
	}
	s := specs[0]
	if !almostEqual(s.CPIMean, 0.88, 0.02) {
		t.Errorf("mean = %v, want ≈0.88", s.CPIMean)
	}
	if !almostEqual(s.CPIStddev, 0.09, 0.02) {
		t.Errorf("stddev = %v, want ≈0.09", s.CPIStddev)
	}
	if s.NumTasks != 10 || s.NumSamples != 2000 {
		t.Errorf("counts = %d tasks, %d samples", s.NumTasks, s.NumSamples)
	}
	if !almostEqual(s.CPUUsageMean, 1.0, 1e-9) {
		t.Errorf("usage mean = %v", s.CPUUsageMean)
	}
	if got := b.PendingSamples(key); got != 0 {
		t.Errorf("pending after recompute = %d", got)
	}
	if got, ok := b.Spec(key); !ok || got.CPIMean != s.CPIMean {
		t.Error("Spec lookup failed")
	}
}

func TestSpecBuilderPerPlatformSeparation(t *testing.T) {
	// CPI is a function of the platform: same job, two platforms, two
	// distinct specs (§3.1).
	b := NewSpecBuilder(DefaultParams())
	feedSamples(t, b, "search", model.PlatformA, 8, 150, 1.0, 0.1, 2)
	feedSamples(t, b, "search", model.PlatformB, 8, 150, 1.3, 0.1, 3)
	specs := b.Recompute(day0)
	if len(specs) != 2 {
		t.Fatalf("specs = %d, want 2", len(specs))
	}
	a, bb := specs[0], specs[1]
	if a.Platform == bb.Platform {
		t.Fatal("platforms not separated")
	}
	for _, s := range specs {
		want := 1.0
		if s.Platform == model.PlatformB {
			want = 1.3
		}
		if !almostEqual(s.CPIMean, want, 0.03) {
			t.Errorf("%s mean = %v, want %v", s.Platform, s.CPIMean, want)
		}
	}
}

func TestSpecBuilderRobustnessGates(t *testing.T) {
	b := NewSpecBuilder(DefaultParams())
	// Only 4 tasks: below the 5-task gate.
	feedSamples(t, b, "tiny", model.PlatformA, 4, 500, 1.5, 0.1, 4)
	// 10 tasks but only 50 samples each: below the 100-sample gate.
	feedSamples(t, b, "sparse", model.PlatformA, 10, 50, 1.5, 0.1, 5)
	specs := b.Recompute(day0)
	if len(specs) != 0 {
		t.Errorf("non-robust specs published: %+v", specs)
	}
	// The specs still exist internally (Spec returns them).
	if _, ok := b.Spec(model.SpecKey{Job: "tiny", Platform: model.PlatformA}); !ok {
		t.Error("internal spec missing")
	}
}

func TestSpecBuilderAgeWeighting(t *testing.T) {
	// Day 1 at CPI 1.0, day 2 at CPI 2.0 with the same sample count:
	// the new mean must be pulled above the plain average of 1.5
	// because day 1's weight decays by 0.9.
	b := NewSpecBuilder(DefaultParams())
	feedSamples(t, b, "j", model.PlatformA, 10, 100, 1.0, 0.05, 6)
	b.Recompute(day0)
	feedSamples(t, b, "j", model.PlatformA, 10, 100, 2.0, 0.05, 7)
	specs := b.Recompute(day0.Add(24 * time.Hour))
	if len(specs) != 1 {
		t.Fatalf("specs = %d", len(specs))
	}
	got := specs[0].CPIMean
	// Expected: (0.9·1000·1.0 + 1000·2.0) / (0.9·1000 + 1000) ≈ 1.526.
	want := (0.9*1.0 + 2.0) / 1.9
	if !almostEqual(got, want, 0.02) {
		t.Errorf("age-weighted mean = %v, want ≈%v", got, want)
	}
	// Age-weighting also inflates stddev because the two days differ.
	if specs[0].CPIStddev < 0.3 {
		t.Errorf("blended stddev = %v, want dominated by day gap", specs[0].CPIStddev)
	}
}

func TestSpecBuilderIdleDecay(t *testing.T) {
	// A job that stops reporting decays out of the spec table.
	p := DefaultParams()
	b := NewSpecBuilder(p)
	feedSamples(t, b, "gone", model.PlatformA, 6, 120, 1.2, 0.1, 8)
	b.Recompute(day0)
	key := model.SpecKey{Job: "gone", Platform: model.PlatformA}
	if _, ok := b.Spec(key); !ok {
		t.Fatal("spec missing after first recompute")
	}
	// 0.9^d · 720 < 1 needs d ≈ 63 days.
	for d := 1; d <= 70; d++ {
		b.Recompute(day0.Add(time.Duration(d) * 24 * time.Hour))
	}
	if _, ok := b.Spec(key); ok {
		t.Error("stale spec never decayed away")
	}
}

func TestSpecBuilderRejectsBadSamples(t *testing.T) {
	b := NewSpecBuilder(DefaultParams())
	bad := []model.Sample{
		{},
		{Job: "j", Platform: model.PlatformA, Timestamp: day0, CPI: 0, CPUUsage: 1}, // zero CPI
		{Job: "j", Platform: model.PlatformA, Timestamp: day0, CPI: -1, CPUUsage: 1},
		{Job: "j", Timestamp: day0, CPI: 1, CPUUsage: 1}, // no platform
	}
	for i, s := range bad {
		if err := b.AddSample(s); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

func TestSpecBuilderDue(t *testing.T) {
	p := DefaultParams()
	b := NewSpecBuilder(p)
	if !b.Due(day0) {
		t.Error("fresh builder should be due")
	}
	b.Recompute(day0)
	if b.Due(day0.Add(time.Hour)) {
		t.Error("not due after 1h with 24h interval")
	}
	if !b.Due(day0.Add(24 * time.Hour)) {
		t.Error("due after 24h")
	}
}

func TestSpecBuilderTable1Shapes(t *testing.T) {
	// Table 1: three representative jobs and their specs.
	rows := []struct {
		job   model.JobName
		mean  float64
		sd    float64
		tasks int
	}{
		{"jobA", 0.88, 0.09, 312},
		{"jobB", 1.36, 0.26, 1040},
		{"jobC", 2.03, 0.20, 1250},
	}
	b := NewSpecBuilder(DefaultParams())
	for i, r := range rows {
		feedSamples(t, b, r.job, model.PlatformA, r.tasks, 100, r.mean, r.sd, int64(10+i))
	}
	specs := b.Recompute(day0)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, r := range rows {
		s, ok := b.Spec(model.SpecKey{Job: r.job, Platform: model.PlatformA})
		if !ok {
			t.Fatalf("missing spec for %s", r.job)
		}
		if !almostEqual(s.CPIMean, r.mean, 0.02) || !almostEqual(s.CPIStddev, r.sd, 0.02) {
			t.Errorf("%s: got %.3f±%.3f, want %.2f±%.2f", r.job, s.CPIMean, s.CPIStddev, r.mean, r.sd)
		}
		if s.NumTasks != r.tasks {
			t.Errorf("%s: tasks = %d, want %d", r.job, s.NumTasks, r.tasks)
		}
	}
}

func TestSpecBuilderConcurrentAdds(t *testing.T) {
	b := NewSpecBuilder(DefaultParams())
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				_ = b.AddSample(model.Sample{
					Job:       "conc",
					Task:      model.TaskID{Job: "conc", Index: w},
					Platform:  model.PlatformA,
					Timestamp: day0.Add(time.Duration(i) * time.Second),
					CPUUsage:  1,
					CPI:       1.5,
				})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := b.PendingSamples(model.SpecKey{Job: "conc", Platform: model.PlatformA}); got != 4000 {
		t.Errorf("pending = %d, want 4000", got)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

// Property: the age-weighted spec (mean, stddev, usage mean) is
// invariant under reordering of samples WITHIN a recompute interval —
// a spec describes a population, not an arrival order. Welford
// accumulation is float-order-sensitive, so equality holds to relative
// tolerance, not bit-exactly; the cluster's parallel step keeps its
// byte-exact guarantee by draining samples in a fixed order, and this
// test is the bound on what a hypothetical reorder could change.
func TestSpecReorderInvariantWithinInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)

	mkSamples := func(n int) []model.Sample {
		out := make([]model.Sample, n)
		for i := range out {
			out[i] = model.Sample{
				Job:       "websearch",
				Task:      model.TaskID{Job: "websearch", Index: i % 20},
				Platform:  model.PlatformA,
				Timestamp: base.Add(time.Duration(i) * time.Second),
				CPUUsage:  rng.Float64() * 4,
				CPI:       0.5 + rng.ExpFloat64(),
				Machine:   "m0",
			}
		}
		return out
	}

	build := func(days [][]model.Sample) model.Spec {
		b := NewSpecBuilder(Params{MinSamplesPerTask: 1})
		var last []model.Spec
		for d, samples := range days {
			for _, s := range samples {
				if err := b.AddSample(s); err != nil {
					t.Fatal(err)
				}
			}
			last = b.Recompute(base.Add(time.Duration(d+1) * 24 * time.Hour))
		}
		if len(last) != 1 {
			t.Fatalf("specs = %d, want 1", len(last))
		}
		return last[0]
	}

	for trial := 0; trial < 50; trial++ {
		day1 := mkSamples(200 + rng.Intn(200))
		day2 := mkSamples(200 + rng.Intn(200))
		ref := build([][]model.Sample{day1, day2})

		// Shuffle each day independently; days must NOT mix (age
		// weighting makes the day boundary semantically meaningful).
		s1 := append([]model.Sample(nil), day1...)
		s2 := append([]model.Sample(nil), day2...)
		rng.Shuffle(len(s1), func(i, j int) { s1[i], s1[j] = s1[j], s1[i] })
		rng.Shuffle(len(s2), func(i, j int) { s2[i], s2[j] = s2[j], s2[i] })
		got := build([][]model.Sample{s1, s2})

		const tol = 1e-9
		if relErr(got.CPIMean, ref.CPIMean) > tol ||
			relErr(got.CPIStddev, ref.CPIStddev) > tol ||
			relErr(got.CPUUsageMean, ref.CPUUsageMean) > tol {
			t.Fatalf("trial %d: reordered spec (%v, %v, %v) vs (%v, %v, %v)",
				trial, got.CPIMean, got.CPIStddev, got.CPUUsageMean,
				ref.CPIMean, ref.CPIStddev, ref.CPUUsageMean)
		}
		if got.NumSamples != ref.NumSamples || got.NumTasks != ref.NumTasks {
			t.Fatalf("trial %d: counts changed under reorder", trial)
		}
		if got.CPIStddev < 0 || math.IsNaN(got.CPIStddev) {
			t.Fatalf("trial %d: invalid stddev %v", trial, got.CPIStddev)
		}
	}
}

// Property: the age-weighted variance combination never goes negative
// and never produces NaN, including degenerate intervals (single
// sample, constant samples, huge spread following tiny spread).
func TestSpecVarianceNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 200; trial++ {
		b := NewSpecBuilder(Params{MinSamplesPerTask: 1})
		days := 1 + rng.Intn(5)
		for d := 0; d < days; d++ {
			n := 1 + rng.Intn(30)
			constant := rng.Intn(3) == 0
			cpi := 0.5 + rng.ExpFloat64()*math.Pow(10, float64(rng.Intn(4)-2))
			for i := 0; i < n; i++ {
				v := cpi
				if !constant {
					v = 0.5 + rng.ExpFloat64()
				}
				err := b.AddSample(model.Sample{
					Job: "j", Task: model.TaskID{Job: "j", Index: i},
					Platform:  model.PlatformA,
					Timestamp: base.Add(time.Duration(i) * time.Second),
					CPUUsage:  rng.Float64(),
					CPI:       v,
					Machine:   "m",
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			b.Recompute(base.Add(time.Duration(d+1) * 24 * time.Hour))
		}
		spec, ok := b.Spec(model.SpecKey{Job: "j", Platform: model.PlatformA})
		if !ok {
			t.Fatalf("trial %d: no spec", trial)
		}
		if spec.CPIStddev < 0 || math.IsNaN(spec.CPIStddev) || math.IsInf(spec.CPIStddev, 0) {
			t.Fatalf("trial %d: stddev %v", trial, spec.CPIStddev)
		}
		if spec.CPIMean <= 0 || math.IsNaN(spec.CPIMean) {
			t.Fatalf("trial %d: mean %v", trial, spec.CPIMean)
		}
	}
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d / m
}

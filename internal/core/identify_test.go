package core

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

func TestNewIdentifierRegistry(t *testing.T) {
	p := DefaultParams()
	for _, name := range append([]string{""}, IdentifierNames()...) {
		id, err := NewIdentifier(name, p)
		if err != nil || id == nil {
			t.Errorf("NewIdentifier(%q) = %v, %v", name, id, err)
		}
	}
	if def, _ := NewIdentifier("", p); def.Name() != IdentifierCorrelation {
		t.Errorf("empty name resolved to %q, want the correlation default", def.Name())
	}
	if _, err := NewIdentifier("nonsense", p); err == nil {
		t.Error("unknown identifier accepted")
	}
}

func TestNewManagerPanicsOnUnknownIdentifier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewManager accepted an unknown identifier")
		}
	}()
	p := DefaultParams()
	p.Identifier = "nonsense"
	NewManager("m", p, newFakeCapper())
}

// TestCorrelationIdentifierMatchesRankSuspects is the interface-
// extraction parity check at the unit level: the reference identifier
// must produce float-identical scores and ordering to a direct
// RankSuspects call on the same inputs (the cluster-level golden run
// is TestIdentifierExtractionGolden in internal/cluster).
func TestCorrelationIdentifierMatchesRankSuspects(t *testing.T) {
	victim := buildSeries([]float64{3, 3, 3, 1, 1, 1, 3, 3, 3, 3}, time.Minute)
	suspects := []SuspectInput{
		{Task: model.TaskID{Job: "guilty", Index: 0}, Job: "guilty",
			Usage: buildSeries([]float64{2, 2, 2, 0, 0, 0, 2, 2, 2, 2}, time.Minute)},
		{Task: model.TaskID{Job: "innocent", Index: 0}, Job: "innocent",
			Usage: buildSeries([]float64{0, 0, 0, 2, 2, 2, 0, 0, 0, 0}, time.Minute)},
		{Task: model.TaskID{Job: "steady", Index: 0}, Job: "steady",
			Usage: buildSeries([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, time.Minute)},
	}
	now := day0.Add(10 * time.Minute)
	in := IdentifyInput{
		Victim:    model.TaskID{Job: "victim", Index: 0},
		VictimCPI: victim, Threshold: 2.0,
		Now: now, Window: 10 * time.Minute, Period: time.Minute,
		Suspects: suspects,
	}
	got := CorrelationIdentifier{}.Identify(in)
	want := RankSuspects(victim, 2.0, suspects, now, 10*time.Minute, time.Minute)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("interface extraction changed the reference scores:\n got %+v\nwant %+v", got, want)
	}
}

// identifiers under test for shared-contract properties. PANDA is
// rebuilt per property invocation: its evidence state is part of the
// contract under test only within one call sequence.
func testIdentifiers(p Params) []Identifier {
	return []Identifier{CorrelationIdentifier{}, NewPandaIdentifier(p)}
}

// TestIdentifierTieBreakProperty: both identifiers return suspects in
// deterministic order under score ties, regardless of input order (the
// PR 2 sorted-order lesson). Tied scores are forced by giving every
// suspect an identical usage series.
func TestIdentifierTieBreakProperty(t *testing.T) {
	p := DefaultParams()
	f := func(perm []uint8, nRaw uint8) bool {
		n := int(nRaw)%6 + 2
		mk := func(i int) SuspectInput {
			return SuspectInput{
				Task: model.TaskID{Job: "tied", Index: i}, Job: "tied",
				Usage: buildSeries([]float64{1, 1, 1, 1, 1}, time.Minute),
			}
		}
		// A deterministic permutation of [0, n) driven by quick's input.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, r := range perm {
			j := int(r) % n
			k := i % n
			order[j], order[k] = order[k], order[j]
		}
		victim := buildSeries([]float64{3, 3, 3, 3, 3}, time.Minute)
		in := IdentifyInput{
			Victim:    model.TaskID{Job: "victim", Index: 0},
			VictimCPI: victim, Threshold: 2.0, SpecMean: 1.0, SpecStddev: 0.5,
			Now: day0.Add(5 * time.Minute), Window: 10 * time.Minute, Period: time.Minute,
		}
		for _, ident := range testIdentifiers(p) {
			sorted := make([]SuspectInput, 0, n)
			shuffled := make([]SuspectInput, 0, n)
			for i := 0; i < n; i++ {
				sorted = append(sorted, mk(i))
				shuffled = append(shuffled, mk(order[i]))
			}
			inSorted, inShuffled := in, in
			inSorted.Suspects = sorted
			inShuffled.Suspects = shuffled
			// Fresh PANDA state for each presentation so only input order
			// differs.
			var a, b []Suspect
			switch ident.(type) {
			case *PandaIdentifier:
				a = NewPandaIdentifier(p).Identify(inSorted)
				b = NewPandaIdentifier(p).Identify(inShuffled)
			default:
				a = ident.Identify(inSorted)
				b = ident.Identify(inShuffled)
			}
			if !reflect.DeepEqual(a, b) {
				t.Logf("%s: order differs under ties:\n a=%+v\n b=%+v", ident.Name(), a, b)
				return false
			}
			for i := 1; i < len(a); i++ {
				if a[i-1].Correlation == a[i].Correlation &&
					a[i-1].Task.String() >= a[i].Task.String() {
					t.Logf("%s: tie-break not by Task.String(): %v then %v",
						ident.Name(), a[i-1].Task, a[i].Task)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// pandaInput builds a round where the antagonist's usage aligns with
// victim CPI at sigmas σ above the spec mean.
func pandaRound(now time.Time, sigmas float64) IdentifyInput {
	mean, sd := 1.0, 0.1
	cpi := mean + sigmas*sd
	victim := timeseries.New()
	antag := timeseries.New()
	for i := 0; i < 10; i++ {
		ts := now.Add(time.Duration(i-10) * time.Minute)
		_ = victim.Append(ts, cpi)
		_ = antag.Append(ts, 4.0)
	}
	return IdentifyInput{
		Victim:    model.TaskID{Job: "victim", Index: 0},
		VictimCPI: victim,
		Threshold: mean + 2*sd, SpecMean: mean, SpecStddev: sd,
		Now: now, Window: 10 * time.Minute, Period: time.Minute,
		Suspects: []SuspectInput{{
			Task: model.TaskID{Job: "antag", Index: 0}, Job: "antag", Usage: antag,
		}},
	}
}

func TestPandaOneWindowNeitherConvictsNorAcquits(t *testing.T) {
	p := DefaultParams()
	pi := NewPandaIdentifier(p)
	now := day0.Add(time.Hour)

	// Round 1: a maximally guilty window (CPI 6σ+ above mean, saturated
	// evidence). One window must stay below the reporting threshold.
	r1 := pi.Identify(pandaRound(now, 8))
	if len(r1) != 1 {
		t.Fatalf("suspects = %d", len(r1))
	}
	if r1[0].Correlation >= p.CorrelationThreshold {
		t.Errorf("one perfect window scored %.3f ≥ threshold %.2f: single windows must not convict",
			r1[0].Correlation, p.CorrelationThreshold)
	}
	if r1[0].Correlation <= 0 {
		t.Errorf("guilty window scored %.3f, want positive evidence", r1[0].Correlation)
	}

	// Round 2, a minute later, still guilty: accumulated evidence now
	// convicts.
	r2 := pi.Identify(pandaRound(now.Add(time.Minute), 8))
	if r2[0].Correlation < p.CorrelationThreshold {
		t.Errorf("two consistent windows scored %.3f < threshold %.2f: persistence must convict",
			r2[0].Correlation, p.CorrelationThreshold)
	}
}

func TestPandaEvidenceDecaysWhenGuiltStops(t *testing.T) {
	p := DefaultParams()
	pi := NewPandaIdentifier(p)
	now := day0.Add(time.Hour)
	for i := 0; i < 5; i++ {
		pi.Identify(pandaRound(now.Add(time.Duration(i)*time.Minute), 8))
	}
	convicted := pi.Identify(pandaRound(now.Add(5*time.Minute), 8))[0].Correlation
	if convicted < p.CorrelationThreshold {
		t.Fatalf("sustained guilt scored %.3f, expected conviction", convicted)
	}
	// Innocent-looking rounds (victim at its spec mean) drive evidence
	// down and eventually acquit.
	score := convicted
	for i := 6; i < 16; i++ {
		r := pi.Identify(pandaRound(now.Add(time.Duration(i)*time.Minute), 0))
		score = r[0].Correlation
	}
	if score >= p.CorrelationThreshold {
		t.Errorf("after 10 innocent windows the score is still %.3f ≥ %.2f", score, p.CorrelationThreshold)
	}
	if score >= convicted {
		t.Errorf("evidence did not decay: %.3f → %.3f", convicted, score)
	}
}

func TestPandaForgetDropsPairs(t *testing.T) {
	pi := NewPandaIdentifier(DefaultParams())
	now := day0.Add(time.Hour)
	pi.Identify(pandaRound(now, 8))
	if pi.EvidencePairs() != 1 {
		t.Fatalf("pairs = %d, want 1", pi.EvidencePairs())
	}
	// Forgetting the suspect drops the pair; same for the victim side.
	pi.Forget(model.TaskID{Job: "antag", Index: 0})
	if pi.EvidencePairs() != 0 {
		t.Errorf("pairs = %d after suspect exit, want 0", pi.EvidencePairs())
	}
	pi.Identify(pandaRound(now.Add(time.Minute), 8))
	pi.Forget(model.TaskID{Job: "victim", Index: 0})
	if pi.EvidencePairs() != 0 {
		t.Errorf("pairs = %d after victim exit, want 0", pi.EvidencePairs())
	}
}

func TestPandaFallsBackWithoutSpecMoments(t *testing.T) {
	// No moments and no recoverable threshold→σ relation: the round
	// score falls back to the §4.2 correlation, still in [−1, 1].
	pi := NewPandaIdentifier(DefaultParams())
	in := pandaRound(day0.Add(time.Hour), 8)
	in.SpecMean, in.SpecStddev = 0, 0
	in.Threshold = 0 // degenerate: nothing to recover σ from
	r := pi.Identify(in)
	if len(r) != 1 {
		t.Fatalf("suspects = %d", len(r))
	}
	if r[0].Correlation < -1 || r[0].Correlation > 1 {
		t.Errorf("fallback score %v outside [-1, 1]", r[0].Correlation)
	}
}

func TestManagerTaskExitedForgetsPandaEvidence(t *testing.T) {
	p := DefaultParams()
	p.Identifier = IdentifierPanda
	m := NewManager("m", p, newFakeCapper())
	m.RegisterJob(victimJob)
	m.RegisterJob(model.Job{Name: "mapreduce", Class: model.ClassBatch, Priority: model.PriorityBatch})
	m.UpdateSpec(model.Spec{
		Job: "search", Platform: model.PlatformA,
		NumSamples: 100000, NumTasks: 300, CPIMean: 1.0, CPIStddev: 0.1,
	})
	for min := 0; min < 8; min++ {
		feed(m, "mapreduce", 0, min, 4.0, 1.5)
		feed(m, "search", 0, min, 1.2, 3.0)
	}
	pi := m.identifier.(*PandaIdentifier)
	if pi.EvidencePairs() == 0 {
		t.Fatal("no evidence accumulated; fixture broken")
	}
	m.TaskExited(model.TaskID{Job: "mapreduce", Index: 0})
	m.TaskExited(model.TaskID{Job: "search", Index: 0})
	if got := pi.EvidencePairs(); got != 0 {
		t.Errorf("evidence pairs = %d after both tasks exited, want 0", got)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

// takeTurnsScenario builds the §4.2 failure case: three batch tasks
// fill the cache in rotation with an all-quiet minute between rounds.
// The victim hurts (CPI = painCPI) whenever any rotator runs and is
// healthy (CPI = 1.0) in the gaps. Each member's usage matches only
// its own third of the pain pattern — its individual correlation
// stays moderate — while the three usages summed reproduce the
// victim's CPI shape exactly.
//
// Schedule over each 12-minute round: A on minutes 0–2, gap at 3,
// B on 4–6, gap at 7, C on 8–10, gap at 11.
func takeTurnsScenario(painCPI float64) (victim *timeseries.Series, suspects []SuspectInput) {
	victim = timeseries.New()
	series := []*timeseries.Series{timeseries.New(), timeseries.New(), timeseries.New()}
	owner := func(min int) int { // -1 = gap
		switch min % 12 {
		case 0, 1, 2:
			return 0
		case 4, 5, 6:
			return 1
		case 8, 9, 10:
			return 2
		default:
			return -1
		}
	}
	for min := 0; min < 12; min++ {
		ts := day0.Add(time.Duration(min) * time.Minute)
		who := owner(min)
		cpi := 1.0
		if who >= 0 {
			cpi = painCPI
		}
		_ = victim.Append(ts, cpi)
		for i, s := range series {
			u := 0.1
			if who == i {
				u = 4.0
			}
			_ = s.Append(ts, u)
		}
	}
	for i, s := range series {
		suspects = append(suspects, SuspectInput{
			Task:     model.TaskID{Job: "rotator", Index: i},
			Job:      "rotator",
			Class:    model.ClassBatch,
			Priority: model.PriorityBatch,
			Usage:    s,
		})
	}
	return victim, suspects
}

func TestGroupCorrelationBeatsIndividuals(t *testing.T) {
	victim, suspects := takeTurnsScenario(3.0)
	now := day0.Add(12 * time.Minute)

	group := FindAntagonistGroup(victim, 2.0, suspects, now, 15*time.Minute, time.Minute, 4)
	if len(group.Members) != 3 {
		t.Fatalf("group = %+v, want all three rotators", group)
	}
	// Every member's individual Pearson r is moderate; the group's is
	// near-perfect (the sum reproduces the CPI shape).
	for _, m := range group.Members {
		if m.Correlation >= 0.5 {
			t.Errorf("member %v individually at %v, want moderate", m.Task, m.Correlation)
		}
	}
	if group.Correlation < 0.95 {
		t.Errorf("group corr = %v, want ≈1", group.Correlation)
	}
}

func TestFindAntagonistGroupDegenerate(t *testing.T) {
	empty := timeseries.New()
	g := FindAntagonistGroup(empty, 2.0, nil, day0, 10*time.Minute, time.Minute, 4)
	if len(g.Members) != 0 || g.Correlation != 0 {
		t.Errorf("empty group = %+v", g)
	}
	// Victim data but no usable suspects.
	victim := buildSeries([]float64{3, 1, 3, 1}, time.Minute)
	g = FindAntagonistGroup(victim, 2.0, []SuspectInput{{Task: model.TaskID{Job: "x"}, Usage: nil}},
		day0.Add(4*time.Minute), 10*time.Minute, time.Minute, 4)
	if len(g.Members) != 0 {
		t.Errorf("group from nil-usage suspects = %+v", g)
	}
	// Constant victim CPI: Pearson undefined → no group.
	flat := buildSeries([]float64{3, 3, 3, 3}, time.Minute)
	_, suspects := takeTurnsScenario(3.0)
	g = FindAntagonistGroup(flat, 2.0, suspects, day0.Add(4*time.Minute), 10*time.Minute, time.Minute, 4)
	if g.Correlation > 0.01 {
		t.Errorf("flat-CPI group corr = %v, want ≈0", g.Correlation)
	}
	// maxMembers floor.
	vv, ss := takeTurnsScenario(3.0)
	g = FindAntagonistGroup(vv, 2.0, ss, day0.Add(12*time.Minute), 15*time.Minute, time.Minute, 0)
	if len(g.Members) > 1 {
		t.Errorf("maxMembers=0 should clamp to 1, got %d", len(g.Members))
	}
}

func TestFindAntagonistGroupRespectsMaxMembers(t *testing.T) {
	victim, suspects := takeTurnsScenario(3.0)
	now := day0.Add(12 * time.Minute)
	g := FindAntagonistGroup(victim, 2.0, suspects, now, 15*time.Minute, time.Minute, 2)
	if len(g.Members) > 2 {
		t.Errorf("group size %d exceeds max 2", len(g.Members))
	}
}

func TestEnforcerDecideGroup(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	group := GroupSuspect{
		Correlation: 0.6,
		Members: []Suspect{
			{Task: model.TaskID{Job: "rotator", Index: 0}, Job: "rotator", Class: model.ClassBatch, Priority: model.PriorityBatch},
			{Task: model.TaskID{Job: "rotator", Index: 1}, Job: "rotator", Class: model.ClassBatch, Priority: model.PriorityBestEffort},
			{Task: lsTask, Job: "bigtable", Class: model.ClassLatencySensitive},
			{Task: victimTask, Job: "search"}, // never cap the victim
		},
	}
	ds := e.DecideGroup(day0, victimTask, victimJob, group, jobTable())
	if len(ds) != 2 {
		t.Fatalf("decisions = %+v, want 2 (only throttleable members)", ds)
	}
	for _, d := range ds {
		if d.Action != ActionCap {
			t.Errorf("decision = %+v", d)
		}
	}
	// Priority-dependent quotas apply per member.
	if q, _ := capper.quota(model.TaskID{Job: "rotator", Index: 0}); q != 0.1 {
		t.Errorf("batch member quota = %v", q)
	}
	if q, _ := capper.quota(model.TaskID{Job: "rotator", Index: 1}); q != 0.01 {
		t.Errorf("best-effort member quota = %v", q)
	}
	// All expire together via Tick.
	released := e.Tick(day0.Add(5 * time.Minute))
	if len(released) != 2 {
		t.Errorf("released = %v", released)
	}
}

func TestEnforcerDecideGroupReportOnly(t *testing.T) {
	p := DefaultParams()
	p.ReportOnly = true
	capper := newFakeCapper()
	e := NewEnforcer(p, capper)
	group := GroupSuspect{
		Correlation: 0.5,
		Members: []Suspect{
			{Task: batchTask, Job: "mapreduce", Class: model.ClassBatch, Priority: model.PriorityBatch},
		},
	}
	ds := e.DecideGroup(day0, victimTask, victimJob, group, nil)
	if len(ds) != 1 || ds[0].Action != ActionReport {
		t.Errorf("decisions = %+v", ds)
	}
	if len(capper.caps) != 0 {
		t.Error("caps applied in report-only mode")
	}
}

func TestEnforcerDecideGroupSkipsCapped(t *testing.T) {
	capper := newFakeCapper()
	e := NewEnforcer(DefaultParams(), capper)
	member := Suspect{Task: batchTask, Job: "mapreduce", Class: model.ClassBatch, Priority: model.PriorityBatch}
	group := GroupSuspect{Correlation: 0.5, Members: []Suspect{member}}
	if ds := e.DecideGroup(day0, victimTask, victimJob, group, jobTable()); len(ds) != 1 {
		t.Fatalf("first round = %+v", ds)
	}
	if ds := e.DecideGroup(day0.Add(time.Minute), victimTask, victimJob, group, jobTable()); len(ds) != 0 {
		t.Errorf("second round re-capped: %+v", ds)
	}
}

func TestManagerGroupDetectionEndToEnd(t *testing.T) {
	// Three rotating antagonists causing mild per-minute pain
	// (CPI 1.5 against threshold 1.2): no individual suspect reaches
	// the 0.35 §4.2 bar, so the plain enforcer does nothing — but the
	// group hypothesis catches all three once GroupDetection is on.
	owner := func(min int) int {
		switch min % 12 {
		case 0, 1, 2:
			return 0
		case 4, 5, 6:
			return 1
		case 8, 9, 10:
			return 2
		default:
			return -1
		}
	}
	run := func(groupDetection bool) (caps int, sawGroup bool) {
		p := DefaultParams()
		p.GroupDetection = groupDetection
		capper := newFakeCapper()
		m := NewManager("m", p, capper)
		m.RegisterJob(victimJob)
		m.RegisterJob(model.Job{Name: "rotator", Class: model.ClassBatch, Priority: model.PriorityBatch})
		m.UpdateSpec(model.Spec{
			Job: "search", Platform: model.PlatformA,
			NumSamples: 100000, NumTasks: 300, CPIMean: 1.0, CPIStddev: 0.1,
		})
		for min := 0; min < 24; min++ {
			ts := day0.Add(time.Duration(min) * time.Minute)
			who := owner(min)
			for i := 0; i < 3; i++ {
				u := 0.1
				if who == i {
					u = 4.0
				}
				m.Observe(model.Sample{
					Job: "rotator", Task: model.TaskID{Job: "rotator", Index: i},
					Platform: model.PlatformA, Timestamp: ts, CPUUsage: u, CPI: 1.5,
				})
			}
			cpi := 1.0
			if who >= 0 {
				cpi = 1.5
			}
			inc := m.Observe(model.Sample{
				Job: "search", Task: model.TaskID{Job: "search", Index: 0},
				Platform: model.PlatformA, Timestamp: ts, CPUUsage: 1.2, CPI: cpi,
			})
			if inc != nil && inc.Group != nil {
				sawGroup = true
				for _, d := range inc.GroupDecisions {
					if d.Action != ActionCap {
						t.Errorf("group decision = %+v", d)
					}
				}
			}
		}
		return len(capper.caps), sawGroup
	}
	caps, sawGroup := run(false)
	if caps != 0 || sawGroup {
		t.Fatalf("without group detection: caps=%d group=%v; want none", caps, sawGroup)
	}
	caps, sawGroup = run(true)
	if !sawGroup {
		t.Fatal("group never detected")
	}
	if caps < 2 {
		t.Errorf("caps = %d, want the group capped", caps)
	}
}

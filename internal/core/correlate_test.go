package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/timeseries"
)

func TestCorrelationPerfectAntagonist(t *testing.T) {
	// Victim CPI is high exactly when the suspect burns CPU.
	cpi := []float64{3, 3, 3, 1, 1, 1}
	usage := []float64{2, 2, 2, 0, 0, 0}
	got := Correlation(cpi, usage, 2.0)
	// All usage mass is at c=3 > threshold 2: corr = 1 − 2/3 = 1/3.
	if !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("corr = %v, want 1/3", got)
	}
}

func TestCorrelationInnocentBystander(t *testing.T) {
	// Suspect busy only while victim CPI is low → negative score.
	cpi := []float64{3, 3, 1, 1}
	usage := []float64{0, 0, 2, 2}
	got := Correlation(cpi, usage, 2.0)
	// All mass at c=1 < 2: corr = 1/2 − 1 = −0.5.
	if !almostEqual(got, -0.5, 1e-12) {
		t.Errorf("corr = %v, want -0.5", got)
	}
}

func TestCorrelationMixed(t *testing.T) {
	cpi := []float64{4, 1}
	usage := []float64{1, 1}
	got := Correlation(cpi, usage, 2.0)
	// u normalized to 0.5 each: 0.5·(1−2/4) + 0.5·(1/2−1) = 0.25 − 0.25.
	if !almostEqual(got, 0, 1e-12) {
		t.Errorf("corr = %v, want 0", got)
	}
}

func TestCorrelationAtThresholdContributesNothing(t *testing.T) {
	cpi := []float64{2.0, 2.0}
	usage := []float64{1, 1}
	if got := Correlation(cpi, usage, 2.0); got != 0 {
		t.Errorf("corr = %v, want 0", got)
	}
}

func TestCorrelationDegenerateInputs(t *testing.T) {
	if Correlation(nil, nil, 2) != 0 {
		t.Error("empty should be 0")
	}
	if Correlation([]float64{1}, []float64{1, 2}, 2) != 0 {
		t.Error("length mismatch should be 0")
	}
	if Correlation([]float64{3}, []float64{1}, 0) != 0 {
		t.Error("zero threshold should be 0")
	}
	if Correlation([]float64{3, 3}, []float64{0, 0}, 2) != 0 {
		t.Error("idle suspect should be 0")
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	// The score is always within [−1, 1], for any inputs.
	f := func(cpiRaw, usageRaw []uint16, thrRaw uint8) bool {
		n := len(cpiRaw)
		if len(usageRaw) < n {
			n = len(usageRaw)
		}
		if n == 0 {
			return true
		}
		cpi := make([]float64, n)
		usage := make([]float64, n)
		for i := 0; i < n; i++ {
			cpi[i] = float64(cpiRaw[i]) / 1000
			usage[i] = float64(usageRaw[i]) / 1000
		}
		thr := float64(thrRaw)/32 + 0.1
		c := Correlation(cpi, usage, thr)
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationNormalizesOverScoredPairs(t *testing.T) {
	// Pairs skipped by the scoring loop (non-positive CPI) must not
	// leave their usage mass in the denominator: a hostile/zero CPI
	// value slipping through would otherwise deflate every scored
	// pair's weight toward 0.
	cases := []struct {
		name      string
		cpi       []float64
		usage     []float64
		threshold float64
		want      float64
	}{
		{
			// The c=0 pair carries usage but is never scored; the result
			// must equal the two-pair series {3,3}/{1,1} → 1 − 2/3.
			name: "zero CPI pair excluded from denominator",
			cpi:  []float64{3, 0, 3}, usage: []float64{1, 1, 1},
			threshold: 2, want: 1.0 / 3.0,
		},
		{
			// A negative (corrupt) CPI pair with heavy usage likewise.
			name: "negative CPI pair excluded from denominator",
			cpi:  []float64{3, -5, 3}, usage: []float64{1, 4, 1},
			threshold: 2, want: 1.0 / 3.0,
		},
		{
			name: "all pairs scoreable: unchanged",
			cpi:  []float64{4, 1}, usage: []float64{1, 1},
			threshold: 2, want: 0,
		},
		{
			name: "only unscoreable pairs: zero",
			cpi:  []float64{0, -1}, usage: []float64{1, 1},
			threshold: 2, want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Correlation(tc.cpi, tc.usage, tc.threshold)
			if !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("corr = %v, want %v", got, tc.want)
			}
			if got < -1-1e-9 || got > 1+1e-9 {
				t.Errorf("corr = %v outside [-1, 1]", got)
			}
		})
	}
}

func TestCorrelationApproachesOneForExtremeAntagonist(t *testing.T) {
	// Massive CPI inflation coinciding with all suspect activity pushes
	// the score toward 1.
	cpi := []float64{1000, 1000, 1000}
	usage := []float64{5, 5, 5}
	got := Correlation(cpi, usage, 2.0)
	if got < 0.99 {
		t.Errorf("corr = %v, want ≈1", got)
	}
}

func buildSeries(vals []float64, step time.Duration) *timeseries.Series {
	s := timeseries.New()
	for i, v := range vals {
		_ = s.Append(day0.Add(time.Duration(i)*step), v)
	}
	return s
}

func TestRankSuspectsOrdering(t *testing.T) {
	victim := buildSeries([]float64{3, 3, 3, 1, 1, 1, 3, 3, 3, 3}, time.Minute)
	guilty := buildSeries([]float64{2, 2, 2, 0, 0, 0, 2, 2, 2, 2}, time.Minute)
	innocent := buildSeries([]float64{0, 0, 0, 2, 2, 2, 0, 0, 0, 0}, time.Minute)
	steady := buildSeries([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, time.Minute)

	suspects := []SuspectInput{
		{Task: model.TaskID{Job: "innocent", Index: 0}, Job: "innocent", Usage: innocent},
		{Task: model.TaskID{Job: "guilty", Index: 0}, Job: "guilty", Usage: guilty},
		{Task: model.TaskID{Job: "steady", Index: 0}, Job: "steady", Usage: steady},
		{Task: model.TaskID{Job: "nilusage", Index: 0}, Job: "nilusage", Usage: nil},
	}
	now := day0.Add(10 * time.Minute)
	ranked := RankSuspects(victim, 2.0, suspects, now, 10*time.Minute, time.Minute)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d, want 3 (nil usage dropped)", len(ranked))
	}
	if ranked[0].Job != "guilty" {
		t.Errorf("top suspect = %s", ranked[0].Job)
	}
	if ranked[0].Correlation <= ranked[1].Correlation ||
		ranked[1].Correlation < ranked[2].Correlation {
		t.Errorf("not sorted: %+v", ranked)
	}
	if ranked[2].Job != "innocent" || ranked[2].Correlation >= 0 {
		t.Errorf("innocent bystander = %+v", ranked[2])
	}
}

func TestRankSuspectsWindowRestriction(t *testing.T) {
	// Activity outside the correlation window must not count. The
	// suspect was hot long ago; in the last 10 minutes it is idle.
	n := 30
	victimVals := make([]float64, n)
	suspectVals := make([]float64, n)
	for i := 0; i < n; i++ {
		victimVals[i] = 3 // always anomalous
		if i < 15 {
			suspectVals[i] = 2 // hot in the old window only
		}
	}
	victim := buildSeries(victimVals, time.Minute)
	suspect := buildSeries(suspectVals, time.Minute)
	now := day0.Add(time.Duration(n) * time.Minute)
	ranked := RankSuspects(victim, 2.0, []SuspectInput{
		{Task: model.TaskID{Job: "s", Index: 0}, Job: "s", Usage: suspect},
	}, now, 10*time.Minute, time.Minute)
	if len(ranked) != 1 {
		t.Fatal("suspect missing")
	}
	if ranked[0].Correlation != 0 {
		t.Errorf("stale activity scored %v, want 0", ranked[0].Correlation)
	}
}

func TestRankSuspectsTieBreakDeterministic(t *testing.T) {
	victim := buildSeries([]float64{3, 3, 3}, time.Minute)
	mk := func(name string) SuspectInput {
		return SuspectInput{
			Task:  model.TaskID{Job: model.JobName(name), Index: 0},
			Job:   model.JobName(name),
			Usage: buildSeries([]float64{1, 1, 1}, time.Minute),
		}
	}
	now := day0.Add(3 * time.Minute)
	r1 := RankSuspects(victim, 2.0, []SuspectInput{mk("zz"), mk("aa")}, now, 10*time.Minute, time.Minute)
	r2 := RankSuspects(victim, 2.0, []SuspectInput{mk("aa"), mk("zz")}, now, 10*time.Minute, time.Minute)
	if r1[0].Job != r2[0].Job || r1[0].Job != "aa" {
		t.Errorf("tie-break nondeterministic: %v vs %v", r1[0].Job, r2[0].Job)
	}
}

func TestTopSuspects(t *testing.T) {
	ranked := []Suspect{
		{Job: "a", Correlation: 0.9},
		{Job: "b", Correlation: 0.5},
		{Job: "c", Correlation: 0.36},
		{Job: "d", Correlation: 0.2},
	}
	top := TopSuspects(ranked, 5, 0.35)
	if len(top) != 3 || top[2].Job != "c" {
		t.Errorf("top = %+v", top)
	}
	top = TopSuspects(ranked, 2, 0.35)
	if len(top) != 2 || top[1].Job != "b" {
		t.Errorf("top-2 = %+v", top)
	}
	if got := TopSuspects(nil, 3, 0.35); len(got) != 0 {
		t.Error("empty input should yield empty output")
	}
}

func TestCorrelationCaseStudyShape(t *testing.T) {
	// Reconstruction of Case 1's shape: victim CPI rising to ≈5 while a
	// video-processing batch task's CPU spikes; correlation lands in
	// the 0.4-0.5 range like the paper's table (0.46).
	var cpi, usage []float64
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			cpi = append(cpi, 5.0)
			usage = append(usage, 6.5)
		} else {
			cpi = append(cpi, 2.4)
			usage = append(usage, 1.5)
		}
	}
	got := Correlation(cpi, usage, 2.0)
	if got < 0.3 || got > 0.6 {
		t.Errorf("case-1-like correlation = %v, want ≈0.4-0.5", got)
	}
}

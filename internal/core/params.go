// Package core implements CPI², the paper's contribution: building CPI
// specs from fleet-wide samples (spec.go), detecting per-task CPI
// anomalies locally on each machine (detect.go), identifying likely
// antagonists by passive cross-correlation (correlate.go), and acting
// on them with CPU hard-capping (enforce.go). manager.go ties the
// pieces into the per-machine CPI² manager the node agent embeds.
package core

import "time"

// Params collects every tunable of the system with the defaults from
// Table 2 of the paper. Zero-valued fields are replaced by defaults
// via Sanitize, so callers may set only what they want to change.
type Params struct {
	// SamplingDuration is how long each counting window lasts.
	SamplingDuration time.Duration
	// SamplingInterval is the period between counting windows.
	SamplingInterval time.Duration
	// SpecRecomputeInterval is how often CPI specs are recalculated
	// (the paper used 24h, with an hourly goal).
	SpecRecomputeInterval time.Duration
	// AgeWeight is the per-day multiplier applied to historical spec
	// data before merging with fresh data (≈0.9).
	AgeWeight float64
	// MinTasks is the fewest tasks a job needs for CPI management.
	MinTasks int
	// MinSamplesPerTask is the fewest samples per task a spec needs.
	MinSamplesPerTask int64
	// MinCPUUsage is the CPU-sec/sec below which CPI measurements are
	// ignored (filters the self-inflicted bimodal pattern of Case 3).
	MinCPUUsage float64
	// OutlierSigma is the flagging threshold in standard deviations
	// above the spec mean (2σ flags ≈5% of samples).
	OutlierSigma float64
	// ViolationsRequired is how many outlier flags within
	// ViolationWindow make a task anomalous.
	ViolationsRequired int
	// ViolationWindow is the sliding window for outlier flags.
	ViolationWindow time.Duration
	// CorrelationWindow is the look-back window for antagonist
	// correlation analysis.
	CorrelationWindow time.Duration
	// CorrelationThreshold is the minimum antagonist correlation to
	// report (0.35 per the §7 evaluation).
	CorrelationThreshold float64
	// AnalysisRateLimit is the minimum spacing between correlation
	// analyses on one machine (§4.2: at most one per second).
	AnalysisRateLimit time.Duration
	// CapDuration is how long a hard cap stays applied.
	CapDuration time.Duration
	// CapLeaseTTL is the cgroup-layer lease granted on each cap and
	// renewed every enforcer Tick. If the enforcer vanishes (agent
	// crash) the machine self-releases the cap within one TTL — the
	// crash-safety bound on stranded caps. Must exceed the tick
	// interval comfortably; it is a backstop, not the expiry mechanism.
	CapLeaseTTL time.Duration
	// BestEffortQuota is the cap (CPU-sec/sec) for best-effort jobs.
	BestEffortQuota float64
	// BatchQuota is the cap (CPU-sec/sec) for other batch jobs.
	BatchQuota float64
	// ReportOnly disables automatic enforcement: CPI² detects and
	// identifies antagonists but only reports incidents, leaving
	// capping to operators (the paper's conservative rollout mode).
	// The zero value — enforcement on — is the library default.
	ReportOnly bool
	// FeedbackThrottling enables the §9 future-work extension: the
	// enforcer adapts the cap quota per round based on whether the
	// victim recovered.
	FeedbackThrottling bool
	// Identifier selects the antagonist-identification algorithm:
	// IdentifierCorrelation (the paper's §4.2 cross-correlation, the
	// default) or IdentifierPanda (PANDA-style noise-resilient scorer).
	// Unknown names are rejected by NewIdentifier; NewManager panics on
	// them (identifier names come from flags or literals, so a bad one
	// is a configuration bug).
	Identifier string
	// GroupDetection enables the §4.2 future-work extension: when no
	// single suspect reaches the correlation threshold, search for a
	// *group* of suspects whose combined usage explains the victim's
	// CPI (antagonists taking turns), and throttle its throttleable
	// members together.
	GroupDetection bool
	// MaxGroupSize bounds the group search (default 4).
	MaxGroupSize int
}

// DefaultParams returns Table 2's values. Enforcement is on by
// default — callers opt out via ReportOnly.
func DefaultParams() Params {
	return Params{
		SamplingDuration:      10 * time.Second,
		SamplingInterval:      time.Minute,
		SpecRecomputeInterval: 24 * time.Hour,
		AgeWeight:             0.9,
		MinTasks:              5,
		MinSamplesPerTask:     100,
		MinCPUUsage:           0.25,
		OutlierSigma:          2.0,
		ViolationsRequired:    3,
		ViolationWindow:       5 * time.Minute,
		CorrelationWindow:     10 * time.Minute,
		CorrelationThreshold:  0.35,
		AnalysisRateLimit:     time.Second,
		CapDuration:           5 * time.Minute,
		CapLeaseTTL:           time.Minute,
		BestEffortQuota:       0.01,
		BatchQuota:            0.1,
		Identifier:            IdentifierCorrelation,
	}
}

// Sanitize fills zero-valued fields with defaults and returns the
// result.
func (p Params) Sanitize() Params {
	d := DefaultParams()
	if p.SamplingDuration <= 0 {
		p.SamplingDuration = d.SamplingDuration
	}
	if p.SamplingInterval <= 0 {
		p.SamplingInterval = d.SamplingInterval
	}
	if p.SpecRecomputeInterval <= 0 {
		p.SpecRecomputeInterval = d.SpecRecomputeInterval
	}
	if p.AgeWeight <= 0 || p.AgeWeight > 1 {
		p.AgeWeight = d.AgeWeight
	}
	if p.MinTasks <= 0 {
		p.MinTasks = d.MinTasks
	}
	if p.MinSamplesPerTask <= 0 {
		p.MinSamplesPerTask = d.MinSamplesPerTask
	}
	if p.MinCPUUsage <= 0 {
		p.MinCPUUsage = d.MinCPUUsage
	}
	if p.OutlierSigma <= 0 {
		p.OutlierSigma = d.OutlierSigma
	}
	if p.ViolationsRequired <= 0 {
		p.ViolationsRequired = d.ViolationsRequired
	}
	if p.ViolationWindow <= 0 {
		p.ViolationWindow = d.ViolationWindow
	}
	if p.CorrelationWindow <= 0 {
		p.CorrelationWindow = d.CorrelationWindow
	}
	if p.CorrelationThreshold <= 0 {
		p.CorrelationThreshold = d.CorrelationThreshold
	}
	if p.AnalysisRateLimit <= 0 {
		p.AnalysisRateLimit = d.AnalysisRateLimit
	}
	if p.CapDuration <= 0 {
		p.CapDuration = d.CapDuration
	}
	if p.CapLeaseTTL <= 0 {
		p.CapLeaseTTL = d.CapLeaseTTL
	}
	if p.BestEffortQuota <= 0 {
		p.BestEffortQuota = d.BestEffortQuota
	}
	if p.BatchQuota <= 0 {
		p.BatchQuota = d.BatchQuota
	}
	if p.MaxGroupSize <= 0 {
		p.MaxGroupSize = 4
	}
	if p.Identifier == "" {
		p.Identifier = d.Identifier
	}
	return p
}

package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

func goodSample(at time.Time) model.Sample {
	return model.Sample{
		Job:       "search",
		Task:      model.TaskID{Job: "search", Index: 3},
		Platform:  model.PlatformA,
		Timestamp: at,
		CPUUsage:  1.5,
		CPI:       2.0,
		Machine:   "m1",
	}
}

func TestSampleValidatorCheck(t *testing.T) {
	v := NewSampleValidator("test", 8)
	if r := v.Check(goodSample(j0)); r != "" {
		t.Fatalf("good sample rejected: %s", r)
	}
	cases := []struct {
		reason string
		mutate func(*model.Sample)
	}{
		{"missing_field", func(s *model.Sample) { s.Job = "" }},
		{"missing_field", func(s *model.Sample) { s.Platform = "" }},
		{"zero_timestamp", func(s *model.Sample) { s.Timestamp = time.Time{} }},
		{"non_finite_cpi", func(s *model.Sample) { s.CPI = math.NaN() }},
		{"non_finite_cpi", func(s *model.Sample) { s.CPI = math.Inf(1) }},
		{"non_finite_cpi", func(s *model.Sample) { s.CPI = math.Inf(-1) }},
		{"negative_cpi", func(s *model.Sample) { s.CPI = -0.5 }},
		{"absurd_cpi", func(s *model.Sample) { s.CPI = 1e9 }},
		{"non_finite_usage", func(s *model.Sample) { s.CPUUsage = math.NaN() }},
		{"non_finite_usage", func(s *model.Sample) { s.CPUUsage = math.Inf(1) }},
		{"negative_usage", func(s *model.Sample) { s.CPUUsage = -1 }},
		{"absurd_usage", func(s *model.Sample) { s.CPUUsage = 1e9 }},
	}
	for i, tc := range cases {
		s := goodSample(j0)
		tc.mutate(&s)
		if r := v.Check(s); r != tc.reason {
			t.Errorf("case %d: reason = %q, want %q", i, r, tc.reason)
		}
	}
	// NaN passes model.Sample.Validate (NaN comparisons are all false)
	// — the validator exists precisely to close that hole.
	nan := goodSample(j0)
	nan.CPI = math.NaN()
	if err := nan.Validate(); err != nil {
		t.Log("model.Validate now rejects NaN; validator is second line")
	}
	if v.Check(nan) == "" {
		t.Error("validator passed NaN CPI")
	}
}

func TestSampleValidatorTimestamps(t *testing.T) {
	now := j0.Add(30 * time.Minute)
	v := NewSampleValidator("test", 8)

	// Without a clock, timestamp sanity is limited to non-zero.
	if r := v.Check(goodSample(j0.Add(100 * time.Hour))); r != "" {
		t.Errorf("clockless validator rejected future sample: %s", r)
	}

	v.Now = func() time.Time { return now }
	// Asymmetric bounds: spool replay delivers legitimately old
	// samples (minutes), so the past bound is loose; nothing
	// legitimate is post-dated, so the future bound is tight.
	if r := v.Check(goodSample(now.Add(-20 * time.Minute))); r != "" {
		t.Errorf("blackout-replay-aged sample rejected: %s", r)
	}
	if r := v.Check(goodSample(now.Add(-2 * time.Hour))); r != "stale_timestamp" {
		t.Errorf("ancient sample: %q, want stale_timestamp", r)
	}
	if r := v.Check(goodSample(now.Add(30 * time.Second))); r != "" {
		t.Errorf("slightly-future sample rejected: %s", r)
	}
	if r := v.Check(goodSample(now.Add(5 * time.Minute))); r != "future_timestamp" {
		t.Errorf("post-dated sample: %q, want future_timestamp", r)
	}
}

func TestSampleValidatorAdmitQuarantinesAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	v := NewSampleValidator("agent", 4)
	v.Metrics = NewMetrics(reg)

	if !v.Admit(goodSample(j0)) {
		t.Fatal("good sample rejected")
	}
	bad := goodSample(j0)
	bad.CPI = math.NaN()
	for i := 0; i < 6; i++ {
		bad.Task.Index = i
		if v.Admit(bad) {
			t.Fatal("bad sample admitted")
		}
	}
	if v.Quarantine.Total() != 6 {
		t.Errorf("quarantine total = %d, want 6", v.Quarantine.Total())
	}
	recent := v.Quarantine.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("retained = %d, want ring cap 4", len(recent))
	}
	// Ring keeps the newest, oldest first.
	for i, qs := range recent {
		if qs.Sample.Task.Index != i+2 {
			t.Errorf("recent[%d].Index = %d, want %d", i, qs.Sample.Task.Index, i+2)
		}
		if qs.Reason != "non_finite_cpi" || qs.Source != "agent" {
			t.Errorf("recent[%d] = %+v", i, qs)
		}
	}
	if got := v.Quarantine.Recent(2); len(got) != 2 || got[1].Sample.Task.Index != 5 {
		t.Errorf("Recent(2) = %+v", got)
	}
}

func TestSampleValidatorFilter(t *testing.T) {
	v := NewSampleValidator("test", 8)
	in := make([]model.Sample, 0, 5)
	for i := 0; i < 5; i++ {
		s := goodSample(j0)
		s.Task.Index = i
		if i%2 == 1 {
			s.CPI = math.Inf(1)
		}
		in = append(in, s)
	}
	out := v.Filter(in)
	if len(out) != 3 {
		t.Fatalf("survivors = %d, want 3", len(out))
	}
	for i, s := range out {
		if s.Task.Index != i*2 {
			t.Errorf("out[%d].Index = %d", i, s.Task.Index)
		}
	}
	if v.Quarantine.Total() != 2 {
		t.Errorf("quarantined = %d", v.Quarantine.Total())
	}
}

// FuzzSampleValidator asserts the validator never panics and never
// admits a sample that would poison spec statistics (NaN/Inf/negative
// CPI or usage).
func FuzzSampleValidator(f *testing.F) {
	f.Add("search", "intel", int64(1320148800), 1.5, 2.0)
	f.Add("", "", int64(0), math.NaN(), math.Inf(1))
	f.Add("j", "p", int64(-1), -5.0, 1e300)
	f.Fuzz(func(t *testing.T, job, platform string, unix int64, usage, cpi float64) {
		v := NewSampleValidator("fuzz", 4)
		v.Now = func() time.Time { return time.Unix(1320148800, 0).UTC() }
		s := model.Sample{
			Job:      model.JobName(job),
			Task:     model.TaskID{Job: model.JobName(job), Index: 0},
			Platform: model.Platform(platform),
			CPUUsage: usage,
			CPI:      cpi,
		}
		if unix != 0 {
			s.Timestamp = time.Unix(unix, 0).UTC()
		}
		if v.Admit(s) {
			if s.Job == "" || s.Platform == "" || s.Timestamp.IsZero() {
				t.Fatalf("admitted structurally invalid sample %+v", s)
			}
			if math.IsNaN(s.CPI) || math.IsInf(s.CPI, 0) || s.CPI < 0 ||
				math.IsNaN(s.CPUUsage) || math.IsInf(s.CPUUsage, 0) || s.CPUUsage < 0 {
				t.Fatalf("admitted garbage sample %+v", s)
			}
		} else {
			_ = fmt.Sprintf("%v", v.Quarantine.Recent(1)) // ring must stay renderable
		}
	})
}

package core

import (
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/timeseries"
)

// This file implements the §4.2/§9 future-work extension the paper
// sketches: "a group of antagonists that together cause significant
// performance interference, but which individually did not have much
// effect (e.g., a set of tasks that took turns filling the cache)…
// looking at groups of antagonists as a unit."
//
// A subtlety the paper does not spell out: the §4.2 correlation score
// cannot be used for groups by summing member usage. The score is a
// usage-weighted average of per-sample pain terms, so the score of a
// summed series is exactly a usage-weighted *convex combination* of
// the member scores — it can never exceed the best individual member,
// and a group of individually-weak suspects stays weak. Treating a
// group "as a unit" therefore needs a shape-sensitive statistic. We
// use the Pearson correlation between the group's summed CPU usage
// and the victim's CPI: for antagonists that take turns, each
// member's usage matches only its own share of the victim's bad
// minutes (low r), while the sum tracks the whole pain pattern
// (r → 1). Pearson is in [-1, 1] like the §4.2 score, so the same
// 0.35 enforcement threshold applies.
//
// Group search is greedy forward selection: seed with the best
// individual, repeatedly add the member that raises the group's
// Pearson r the most, stop when nothing improves it or the size cap
// is hit.

// GroupSuspect is the result of a group-antagonist search.
type GroupSuspect struct {
	// Members are the group's tasks, in the order greedy selection
	// added them (strongest contributor first). Each member's
	// Correlation field carries its *individual* Pearson r for
	// reporting.
	Members []Suspect
	// Correlation is the Pearson correlation of the group's summed
	// usage against the victim's CPI.
	Correlation float64
}

// alignedUsage buckets a suspect's usage series onto the victim's
// sample timeline; buckets with no suspect sample count as zero usage
// (absent means "not running", which matters when summing a group).
func alignedUsage(victimTimes []time.Time, window []timeseries.Point, period time.Duration) []float64 {
	byBucket := make(map[int64]float64, len(window))
	for _, p := range window {
		byBucket[p.Time.Truncate(period).UnixNano()] = p.Value
	}
	out := make([]float64, len(victimTimes))
	for i, t := range victimTimes {
		out[i] = byBucket[t.Truncate(period).UnixNano()]
	}
	return out
}

// FindAntagonistGroup searches for the suspect group whose combined
// CPU usage best explains the victim's CPI, using greedy forward
// selection up to maxMembers. It returns the best group found (which
// may be a single suspect). window/period as in RankSuspects.
func FindAntagonistGroup(victimCPI *timeseries.Series, threshold float64,
	suspects []SuspectInput, now time.Time, window, period time.Duration,
	maxMembers int) GroupSuspect {

	_ = threshold // kept for signature symmetry with RankSuspects
	if maxMembers < 1 {
		maxMembers = 1
	}
	from := now.Add(-window)
	victimPts := victimCPI.Window(from, now)
	if len(victimPts) < 3 {
		return GroupSuspect{} // Pearson needs variation to mean anything
	}
	victimVals := make([]float64, 0, len(victimPts))
	victimTimes := make([]time.Time, 0, len(victimPts))
	seen := make(map[int64]bool, len(victimPts))
	for _, p := range victimPts {
		key := p.Time.Truncate(period).UnixNano()
		if seen[key] {
			continue
		}
		seen[key] = true
		victimVals = append(victimVals, p.Value)
		victimTimes = append(victimTimes, p.Time)
	}

	// Pre-align every suspect once and score it individually.
	type candidate struct {
		suspect Suspect
		usage   []float64
	}
	cands := make([]candidate, 0, len(suspects))
	for _, s := range suspects {
		if s.Usage == nil {
			continue
		}
		u := alignedUsage(victimTimes, s.Usage.Window(from, now), period)
		r, err := stats.PearsonCorrelation(victimVals, u)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{
			suspect: Suspect{
				Task: s.Task, Job: s.Job, Class: s.Class, Priority: s.Priority,
				Correlation: r,
			},
			usage: u,
		})
	}
	if len(cands) == 0 {
		return GroupSuspect{}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].suspect.Correlation > cands[j].suspect.Correlation
	})

	group := GroupSuspect{}
	sum := make([]float64, len(victimVals))
	used := make([]bool, len(cands))
	for len(group.Members) < maxMembers {
		// After the seed member, each addition must buy a real
		// improvement; otherwise greedy sweeps in bystanders whose
		// usage nudges r by noise.
		minGain := 1e-9
		if len(group.Members) > 0 {
			minGain = 0.01
		}
		bestIdx := -1
		bestScore := group.Correlation
		var bestSum []float64
		for i, c := range cands {
			if used[i] {
				continue
			}
			trial := make([]float64, len(sum))
			for k := range trial {
				trial[k] = sum[k] + c.usage[k]
			}
			score, err := stats.PearsonCorrelation(victimVals, trial)
			if err != nil {
				continue
			}
			if score > bestScore+minGain {
				bestScore = score
				bestIdx = i
				bestSum = trial
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		group.Members = append(group.Members, cands[bestIdx].suspect)
		group.Correlation = bestScore
		sum = bestSum
	}
	return group
}

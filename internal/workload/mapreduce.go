package workload

import (
	"time"

	"repro/internal/interference"
	"repro/internal/timeseries"
)

// CapReaction is how a MapReduce-style worker behaves when it notices
// it is being starved of CPU (hard-capped). The paper's case studies
// document all three (§6.2).
type CapReaction int

const (
	// ReactTolerate: keep demanding, run slowly, resume when the cap
	// lifts (the common case — batch frameworks already handle
	// stragglers).
	ReactTolerate CapReaction = iota
	// ReactLameDuck: burst threads trying to offload work to peers
	// while capped, then run in a 2-thread "lame-duck mode" for tens
	// of minutes after the cap lifts before reverting (Case 5).
	ReactLameDuck
	// ReactExit: terminate after enduring SurviveCaps capping episodes,
	// hoping to be rescheduled somewhere better (Case 6's worker
	// survived the first throttling but exited during the second).
	ReactExit
)

// mrPhase is the internal state of a lame-duck worker.
type mrPhase int

const (
	phaseNormal mrPhase = iota
	phaseCapped
	phaseLameDuck
)

// MapReduce is one batch worker of a MapReduce-style job.
type MapReduce struct {
	// CPU is the normal demand in CPU-sec/sec.
	CPU float64
	// Threads is the normal worker thread count (the paper's Case 5
	// worker ran about 8).
	Threads int
	// Reaction selects the cap behaviour.
	Reaction CapReaction
	// SurviveCaps is, for ReactExit, how many completed capping
	// episodes the worker tolerates before exiting during the next
	// one (Case 6: survives 1, dies in episode 2).
	SurviveCaps int
	// LameDuckFor is how long the worker stays in lame-duck mode after
	// a cap lifts (default 30 minutes: "tens of minutes").
	LameDuckFor time.Duration
	// BurstThreads is the thread count while capped in lame-duck
	// reaction (Case 5 observed ≈80).
	BurstThreads int
	// StarvationRatio: the worker considers itself capped when granted
	// < StarvationRatio × demand (default 0.5).
	StarvationRatio float64
	// StarvationTicks: consecutive starved ticks before reacting
	// (default 5).
	StarvationTicks int

	phase        mrPhase
	starvedTicks int
	capEpisodes  int
	lameDuckEnd  time.Time
	exited       bool
	threadLog    *timeseries.Series
	work         float64 // completed work units (CPU-seconds)
}

// NewMapReduce returns a worker with the case-study defaults.
func NewMapReduce(cpu float64, reaction CapReaction) *MapReduce {
	return &MapReduce{
		CPU:             cpu,
		Threads:         8,
		Reaction:        reaction,
		SurviveCaps:     1,
		LameDuckFor:     30 * time.Minute,
		BurstThreads:    80,
		StarvationRatio: 0.5,
		StarvationTicks: 5,
		threadLog:       timeseries.New(),
	}
}

// Demand implements machine.Workload.
func (m *MapReduce) Demand(time.Time) (float64, int) {
	if m.exited {
		return 0, 0
	}
	switch m.phase {
	case phaseCapped:
		if m.Reaction == ReactLameDuck {
			// Spawning helpers to push work to peers: thread count
			// balloons while the CPU cap pins actual usage.
			return m.CPU, m.BurstThreads
		}
		return m.CPU, m.Threads
	case phaseLameDuck:
		return m.CPU * 0.2, 2
	default:
		return m.CPU, m.Threads
	}
}

// Deliver implements machine.Workload.
func (m *MapReduce) Deliver(now time.Time, granted float64, dt time.Duration, _ interference.Result) {
	if m.exited {
		return
	}
	m.work += granted * dt.Seconds()
	demand, threads := m.Demand(now)
	_ = m.threadLog.Append(now, float64(threads))

	starved := demand > 0 && granted < m.StarvationRatio*demand
	switch m.phase {
	case phaseNormal:
		if starved {
			m.starvedTicks++
			if m.starvedTicks >= m.StarvationTicks {
				m.phase = phaseCapped
				m.capEpisodes++
				if m.Reaction == ReactExit && m.capEpisodes > m.SurviveCaps {
					// Quit mid-episode, hoping for a better machine.
					m.exited = true
				}
			}
		} else {
			m.starvedTicks = 0
		}
	case phaseCapped:
		if !starved {
			m.starvedTicks = 0
			switch m.Reaction {
			case ReactLameDuck:
				m.phase = phaseLameDuck
				m.lameDuckEnd = now.Add(m.LameDuckFor)
			default:
				m.phase = phaseNormal
			}
		}
	case phaseLameDuck:
		if now.After(m.lameDuckEnd) {
			m.phase = phaseNormal
		}
	}
}

// Done implements machine.Workload.
func (m *MapReduce) Done() bool { return m.exited }

// CapEpisodes returns how many capping episodes the worker has
// entered.
func (m *MapReduce) CapEpisodes() int { return m.capEpisodes }

// ThreadLog returns the recorded thread-count series (Figure 12b).
func (m *MapReduce) ThreadLog() *timeseries.Series { return m.threadLog }

// Work returns completed work in CPU-seconds.
func (m *MapReduce) Work() float64 { return m.work }

// InLameDuck reports whether the worker is currently in lame-duck
// mode.
func (m *MapReduce) InLameDuck() bool { return m.phase == phaseLameDuck }

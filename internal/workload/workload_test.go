package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/interference"
	"repro/internal/stats"
)

var t0 = time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func res(cpi float64) interference.Result { return interference.Result{CPI: cpi} }

func TestConstantLoad(t *testing.T) {
	if ConstantLoad(0.5).Level(t0) != 0.5 {
		t.Error("constant load wrong")
	}
	if ConstantLoad(2).Level(t0) != 1 || ConstantLoad(-1).Level(t0) != 0 {
		t.Error("clamping wrong")
	}
}

func TestDiurnalLoadShape(t *testing.T) {
	d := DiurnalLoad{Trough: 0.2, Peak: 0.9, PeakHour: 18}
	peak := d.Level(time.Date(2011, 11, 1, 18, 0, 0, 0, time.UTC))
	trough := d.Level(time.Date(2011, 11, 1, 6, 0, 0, 0, time.UTC))
	if !almostEqual(peak, 0.9, 1e-9) {
		t.Errorf("peak = %v", peak)
	}
	if !almostEqual(trough, 0.2, 1e-9) {
		t.Errorf("trough = %v", trough)
	}
	mid := d.Level(time.Date(2011, 11, 1, 12, 0, 0, 0, time.UTC))
	if !almostEqual(mid, 0.55, 1e-9) {
		t.Errorf("midpoint = %v", mid)
	}
	// Jitter stays within bounds and needs an RNG.
	dj := DiurnalLoad{Trough: 0.2, Peak: 0.9, PeakHour: 18, Jitter: 0.1, RNG: rand.New(rand.NewSource(1))}
	for h := 0; h < 24; h++ {
		l := dj.Level(time.Date(2011, 11, 1, h, 0, 0, 0, time.UTC))
		if l < 0 || l > 1 {
			t.Fatalf("jittered level out of range: %v", l)
		}
	}
}

func TestSteady(t *testing.T) {
	s := &Steady{CPU: 1.5, Threads: 3}
	cpu, th := s.Demand(t0)
	if cpu != 1.5 || th != 3 {
		t.Error("steady demand wrong")
	}
	if s.Done() {
		t.Error("steady done early")
	}
	s.Stop()
	if !s.Done() {
		t.Error("steady not done after Stop")
	}
}

func TestBatchTPSTracksIPS(t *testing.T) {
	// Figure 2: run a batch worker through alternating interference
	// levels; TPS and IPS must correlate ≈ 1.
	b := NewBatch(2.0, 16, 2.6)
	now := t0
	for min := 0; min < 120; min++ {
		cpi := 1.5
		if (min/10)%2 == 1 {
			cpi = 2.5 // interference phase
		}
		for sec := 0; sec < 60; sec++ {
			b.Deliver(now, 2.0, time.Second, res(cpi))
			now = now.Add(time.Second)
		}
	}
	tps := b.TPS().Values()
	ips := b.IPS().Values()
	if len(tps) < 100 {
		t.Fatalf("windows = %d", len(tps))
	}
	r, err := stats.PearsonCorrelation(tps, ips)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.97 {
		t.Errorf("TPS/IPS correlation = %v, want ≥ 0.97", r)
	}
	if b.Completed() <= 0 {
		t.Error("no transactions completed")
	}
}

func TestBatchFiniteWork(t *testing.T) {
	b := NewBatch(1, 4, 2.0)
	b.TotalTx = 100
	b.InstructionsPerTx = 1e9
	now := t0
	steps := 0
	for !b.Done() && steps < 10000 {
		b.Deliver(now, 1, time.Second, res(1.0))
		now = now.Add(time.Second)
		steps++
	}
	if !b.Done() {
		t.Fatal("batch never finished")
	}
	// 2e9 instr/sec at CPI 1 → 2 tx/sec → 50 seconds.
	if steps != 50 {
		t.Errorf("steps = %d, want 50", steps)
	}
	if b.Progress() != 1 {
		t.Errorf("progress = %v", b.Progress())
	}
	cpu, th := b.Demand(now)
	if cpu != 0 || th != 0 {
		t.Error("finished batch still demanding")
	}
}

func TestBatchDefaultsAndEndless(t *testing.T) {
	b := NewBatch(1, 4, 2.0)
	if b.Progress() != 0 {
		t.Error("endless progress should be 0")
	}
	if b.Done() {
		t.Error("endless batch done")
	}
}

func TestSearchTreePercentile(t *testing.T) {
	if got := percentile95([]float64{7}); got != 7 {
		t.Errorf("p95 of singleton = %v", got)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if got := percentile95(xs); got != 95 {
		t.Errorf("p95 of 1..100 = %v, want 95", got)
	}
}

func TestSearchLeafLatencyTracksCPI(t *testing.T) {
	// Figure 3: leaf latency ↔ CPI correlation ≈ 0.97.
	tree := NewSearchTree()
	leaf := NewSearchTask(TierLeaf, tree, ConstantLoad(0.7), 2.0, 1.0, nil)
	now := t0
	var cpis []float64
	for i := 0; i < 200; i++ {
		cpi := 1.0 + 0.5*math.Sin(float64(i)/20)
		leaf.Deliver(now, 1.4, time.Second, res(cpi))
		tree.EndTick()
		cpis = append(cpis, cpi)
		now = now.Add(time.Second)
	}
	lat := leaf.Latency().Values()
	r, err := stats.PearsonCorrelation(cpis, lat)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.99 { // noise-free: expect ≈1
		t.Errorf("leaf latency/CPI correlation = %v", r)
	}
}

func TestSearchRootLatencyDominatedByLowerTiers(t *testing.T) {
	// Figure 4(c): the root's latency barely depends on its own CPI.
	tree := NewSearchTree()
	leaves := make([]*SearchTask, 20)
	for i := range leaves {
		leaves[i] = NewSearchTask(TierLeaf, tree, ConstantLoad(0.7), 2.0, 1.0, nil)
	}
	mid := NewSearchTask(TierIntermediate, tree, ConstantLoad(0.7), 1.5, 1.1, nil)
	root := NewSearchTask(TierRoot, tree, ConstantLoad(0.7), 1.0, 1.2, nil)

	rng := rand.New(rand.NewSource(5))
	now := t0
	var rootCPIs, leafCPIs []float64
	for i := 0; i < 300; i++ {
		leafCPI := 1.0 + 0.6*rng.Float64() // leaves see varying interference
		rootCPI := 1.2 + 0.6*rng.Float64() // root CPI varies independently
		for _, l := range leaves {
			l.Deliver(now, 1.4, time.Second, res(leafCPI))
		}
		mid.Deliver(now, 1.0, time.Second, res(1.1))
		root.Deliver(now, 0.7, time.Second, res(rootCPI))
		tree.EndTick()
		rootCPIs = append(rootCPIs, rootCPI)
		leafCPIs = append(leafCPIs, leafCPI)
		now = now.Add(time.Second)
	}
	rootLat := root.Latency().Values()
	// Skip the first few ticks while tier aggregates warm up.
	warm := 5
	rOwn, _ := stats.PearsonCorrelation(rootCPIs[warm:], rootLat[warm:])
	if rOwn > 0.5 {
		t.Errorf("root latency/own-CPI correlation = %v, want weak", rOwn)
	}
	// Leaf CPI from the *previous* tick drives the tiers above.
	rLeaf, _ := stats.PearsonCorrelation(leafCPIs[warm:len(leafCPIs)-2], rootLat[warm+2:])
	if rLeaf < 0.5 {
		t.Errorf("root latency/leaf-CPI correlation = %v, want strong", rLeaf)
	}
}

func TestSearchDemandFollowsLoad(t *testing.T) {
	tree := NewSearchTree()
	s := NewSearchTask(TierLeaf, tree, DiurnalLoad{Trough: 0.2, Peak: 1.0, PeakHour: 18}, 2.0, 1.0, nil)
	peakCPU, _ := s.Demand(time.Date(2011, 11, 1, 18, 0, 0, 0, time.UTC))
	troughCPU, _ := s.Demand(time.Date(2011, 11, 1, 6, 0, 0, 0, time.UTC))
	if peakCPU <= troughCPU {
		t.Errorf("peak %v ≤ trough %v", peakCPU, troughCPU)
	}
	if troughCPU <= 0 {
		t.Error("trough demand should keep a floor")
	}
	s.Stop()
	if cpu, th := s.Demand(t0); cpu != 0 || th != 0 || !s.Done() {
		t.Error("stopped task still demanding")
	}
}

func TestTierString(t *testing.T) {
	if TierLeaf.String() != "leaf" || TierIntermediate.String() != "intermediate" ||
		TierRoot.String() != "root" || Tier(9).String() != "tier?" {
		t.Error("tier strings wrong")
	}
}

func TestMapReduceTolerate(t *testing.T) {
	mr := NewMapReduce(3.0, ReactTolerate)
	now := t0
	// Normal running.
	for i := 0; i < 10; i++ {
		mr.Deliver(now, 3.0, time.Second, res(1.5))
		now = now.Add(time.Second)
	}
	if mr.CapEpisodes() != 0 {
		t.Error("episode counted without starvation")
	}
	// Starved for a while → one episode; keeps its thread count.
	for i := 0; i < 20; i++ {
		mr.Deliver(now, 0.1, time.Second, res(1.5))
		now = now.Add(time.Second)
	}
	if mr.CapEpisodes() != 1 {
		t.Errorf("episodes = %d", mr.CapEpisodes())
	}
	if _, th := mr.Demand(now); th != 8 {
		t.Errorf("tolerate threads = %d, want 8", th)
	}
	// Cap lifts → back to normal.
	for i := 0; i < 10; i++ {
		mr.Deliver(now, 3.0, time.Second, res(1.5))
		now = now.Add(time.Second)
	}
	if mr.Done() {
		t.Error("tolerating worker exited")
	}
	if mr.Work() <= 0 {
		t.Error("no work recorded")
	}
}

func TestMapReduceLameDuckThreadPattern(t *testing.T) {
	// Case 5 / Figure 12: ~8 threads normally, ~80 while capped,
	// 2 in lame-duck mode afterwards, then back to 8.
	mr := NewMapReduce(3.0, ReactLameDuck)
	mr.LameDuckFor = 2 * time.Minute
	now := t0
	step := func(granted float64, n int) {
		for i := 0; i < n; i++ {
			mr.Deliver(now, granted, time.Second, res(1.5))
			now = now.Add(time.Second)
		}
	}
	step(3.0, 10) // normal
	if _, th := mr.Demand(now); th != 8 {
		t.Fatalf("normal threads = %d", th)
	}
	step(0.1, 20) // capped
	if _, th := mr.Demand(now); th != 80 {
		t.Fatalf("capped threads = %d, want 80", th)
	}
	step(3.0, 3) // cap lifted: grants recover to demand → lame duck
	if !mr.InLameDuck() {
		t.Fatal("not in lame-duck after cap lifted")
	}
	if cpu, th := mr.Demand(now); th != 2 || cpu >= 3.0 {
		t.Fatalf("lame-duck demand = %v/%d", cpu, th)
	}
	step(0.6, 121) // ride out lame duck (2 min), grants meeting demand
	step(3.0, 5)   // fully back to normal service
	if mr.InLameDuck() {
		t.Fatal("lame duck never ended")
	}
	if _, th := mr.Demand(now); th != 8 {
		t.Errorf("threads after recovery = %d", th)
	}
	if mr.ThreadLog().Len() == 0 {
		t.Error("thread log empty")
	}
}

func TestMapReduceExitOnSecondCap(t *testing.T) {
	// Case 6 / Figure 13: survives the first capping, exits during the
	// second.
	mr := NewMapReduce(3.0, ReactExit)
	now := t0
	step := func(granted float64, n int) {
		for i := 0; i < n && !mr.Done(); i++ {
			mr.Deliver(now, granted, time.Second, res(1.5))
			now = now.Add(time.Second)
		}
	}
	step(3.0, 10)
	step(0.1, 20) // first cap
	if mr.Done() {
		t.Fatal("exited during first cap")
	}
	if mr.CapEpisodes() != 1 {
		t.Fatalf("episodes = %d", mr.CapEpisodes())
	}
	step(3.0, 10) // recovery
	step(0.1, 20) // second cap
	if !mr.Done() {
		t.Fatal("survived second cap; should have exited")
	}
	if cpu, th := mr.Demand(now); cpu != 0 || th != 0 {
		t.Error("exited worker still demanding")
	}
}

func TestBimodalPhases(t *testing.T) {
	b := NewBimodal()
	cpu0, th := b.Demand(t0)
	if cpu0 != 0.3 || th != 6 {
		t.Errorf("phase 0 = %v/%d", cpu0, th)
	}
	cpu1, _ := b.Demand(t0.Add(10 * time.Minute))
	if cpu1 != 0.05 {
		t.Errorf("phase 1 = %v", cpu1)
	}
	cpu2, _ := b.Demand(t0.Add(20 * time.Minute))
	if cpu2 != 0.3 {
		t.Errorf("phase 2 = %v", cpu2)
	}
	b.Stop()
	if !b.Done() {
		t.Error("not done after Stop")
	}
}

func TestBimodalWithCaseThreeProfileSwingsCPI(t *testing.T) {
	// The emergent Case 3 pattern: CPI ≈3 busy, ≈10 near idle.
	p := CaseThreeProfile()
	m := interference.DefaultMachine("intel-westmere-2.6GHz")
	busy := m.Evaluate([]interference.Load{{Profile: p, Usage: 0.3}}, 0, t0, nil).CPI
	idle := m.Evaluate([]interference.Load{{Profile: p, Usage: 0.05}}, 0, t0, nil).CPI
	if !almostEqual(busy, 3.0, 0.2) {
		t.Errorf("busy CPI = %v, want ≈3", busy)
	}
	if idle < 8 || idle > 11 {
		t.Errorf("idle CPI = %v, want ≈10", idle)
	}
}

package workload

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/interference"
)

// This file implements the MapReduce *master* the paper's §2 leans on:
// batch frameworks "have built-in mechanisms to handle stragglers, so
// they are already designed to handle" hard-capping. The master owns a
// set of shards, hands them to workers, watches per-shard progress,
// and — like the speculative-execution literature it cites (Dean &
// Ghemawat backups, LATE, Mantri) — starts a backup copy of a shard
// whose progress rate falls far behind the median. The job finishes
// when every shard has been completed by some copy.
//
// This is what makes CPI²'s policy safe: capping one worker slows its
// shards, the master routes around it, and the job's completion time
// barely moves.
//
// Determinism note: the master is mutex-guarded, so ShardWorkers on
// concurrently ticking machines are race-free — but shard assignment
// happens inside Demand in arrival order, so WHICH worker gets WHICH
// shard (and the backup-candidate median) depends on cross-machine
// tick order. ShardWorker-based jobs are therefore only reproducible
// under a serial driver (the straggler experiment drives its machines
// serially, and the cluster catalog's MapReduceJob uses the
// self-contained MapReduce workload instead). Placing ShardWorkers on
// a Cluster with Workers > 1 is safe but not bit-reproducible.

// Shard states.
type shardState int

const (
	shardPending shardState = iota
	shardRunning
	shardDone
)

// shard is one unit of work, measured in CPU-seconds. Copies make
// progress independently (a backup re-does the work from scratch);
// the shard completes when the first copy finishes.
type shard struct {
	id       int
	need     float64 // CPU-seconds of work per copy
	progress map[*ShardWorker]float64
	state    shardState
	copies   []*ShardWorker // running copies
	finished time.Time
}

// MRMaster coordinates shards across workers.
type MRMaster struct {
	mu sync.Mutex

	shards  []*shard
	workers []*ShardWorker

	// BackupThreshold: a running shard gets a backup copy when its
	// progress rate is below this fraction of the median shard rate
	// (default 0.4, roughly Mantri's laggard bar).
	BackupThreshold float64
	// MaxCopies bounds copies per shard (default 2).
	MaxCopies int

	backups int
	doneAt  time.Time
}

// NewMRMaster creates a master with nShards shards of workSec
// CPU-seconds each.
func NewMRMaster(nShards int, workSec float64) *MRMaster {
	m := &MRMaster{BackupThreshold: 0.4, MaxCopies: 2}
	for i := 0; i < nShards; i++ {
		m.shards = append(m.shards, &shard{
			id: i, need: workSec,
			progress: make(map[*ShardWorker]float64),
		})
	}
	return m
}

// NewWorker creates a worker owned by this master. Place the returned
// workload on a machine; it pulls shards from the master as capacity
// allows.
func (m *MRMaster) NewWorker(cpu float64) *ShardWorker {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &ShardWorker{master: m, cpu: cpu, threads: 8}
	m.workers = append(m.workers, w)
	return w
}

// assign hands the worker a shard to run, preferring pending shards,
// then backups of laggards. Returns nil when nothing needs running.
// Caller holds m.mu.
func (m *MRMaster) assign(w *ShardWorker) *shard {
	for _, s := range m.shards {
		if s.state == shardPending {
			s.state = shardRunning
			s.copies = append(s.copies, w)
			return s
		}
	}
	// Backup candidates: running shards with a laggard copy.
	med := m.medianRateLocked()
	if med <= 0 {
		return nil
	}
	var cands []*shard
	for _, s := range m.shards {
		if s.state != shardRunning || len(s.copies) >= m.MaxCopies {
			continue
		}
		rate := 0.0
		for _, c := range s.copies {
			if r := c.rate(); r > rate {
				rate = r
			}
		}
		if rate < m.BackupThreshold*med {
			cands = append(cands, s)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	s := cands[0]
	s.copies = append(s.copies, w)
	m.backups++
	return s
}

// medianRateLocked returns the median recent progress rate across
// workers that have run recently — including ones between shards, so
// a lone starved worker cannot define its own baseline. Caller holds
// m.mu.
func (m *MRMaster) medianRateLocked() float64 {
	var rates []float64
	for _, w := range m.workers {
		if w.cur != nil || w.recentSec >= 5 {
			rates = append(rates, w.rate())
		}
	}
	if len(rates) == 0 {
		return 0
	}
	sort.Float64s(rates)
	return rates[len(rates)/2]
}

// progress reports work done on a shard by one copy; marks completion
// when that copy finishes. Caller holds m.mu.
func (m *MRMaster) progress(s *shard, w *ShardWorker, did float64, now time.Time) {
	if s.state == shardDone {
		return
	}
	s.progress[w] += did
	if s.progress[w] >= s.need {
		s.state = shardDone
		s.finished = now
		for _, c := range s.copies {
			if c.cur == s {
				c.cur = nil // all copies stop; the shard is done
			}
		}
		s.copies = nil
		allDone := true
		for _, sh := range m.shards {
			if sh.state != shardDone {
				allDone = false
				break
			}
		}
		if allDone {
			m.doneAt = now
		}
	}
}

// Done reports whether every shard has completed.
func (m *MRMaster) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.doneAt.IsZero()
}

// FinishedAt returns when the last shard completed (zero if running).
func (m *MRMaster) FinishedAt() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.doneAt
}

// Backups returns how many backup copies were launched.
func (m *MRMaster) Backups() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backups
}

// Stats returns (done, total) shard counts.
func (m *MRMaster) Stats() (done, total int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.shards {
		if s.state == shardDone {
			done++
		}
	}
	return done, len(m.shards)
}

// String summarizes progress.
func (m *MRMaster) String() string {
	done, total := m.Stats()
	return fmt.Sprintf("mrjob: %d/%d shards, %d backups", done, total, m.Backups())
}

// ShardWorker is one worker task; it implements machine.Workload.
type ShardWorker struct {
	master  *MRMaster
	cpu     float64
	threads int

	cur        *shard
	recentWork float64 // CPU-sec over the rate window
	recentSec  float64 // wall seconds in the rate window
}

// rate returns the worker's recent progress rate (CPU-sec per wall
// second). Caller holds master.mu.
func (w *ShardWorker) rate() float64 {
	if w.recentSec < 5 {
		return w.cpu // optimistic until measured
	}
	return w.recentWork / w.recentSec
}

// Demand implements machine.Workload.
func (w *ShardWorker) Demand(time.Time) (float64, int) {
	m := w.master
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.doneAt.IsZero() {
		return 0, 0
	}
	if w.cur == nil {
		w.cur = m.assign(w)
	}
	if w.cur == nil {
		return 0.05, 1 // idle heartbeat awaiting stragglers
	}
	return w.cpu, w.threads
}

// Deliver implements machine.Workload.
func (w *ShardWorker) Deliver(now time.Time, granted float64, dt time.Duration, _ interference.Result) {
	m := w.master
	m.mu.Lock()
	defer m.mu.Unlock()
	sec := dt.Seconds()
	// Exponential-ish rate window of ~30s.
	const window = 30.0
	if w.recentSec >= window {
		decay := (window - sec) / window
		if decay < 0 {
			decay = 0
		}
		w.recentWork *= decay
		w.recentSec *= decay
	}
	w.recentSec += sec
	if w.cur == nil {
		return
	}
	did := granted * sec
	w.recentWork += did
	m.progress(w.cur, w, did, now)
}

// Done implements machine.Workload: workers exit when the job is done.
func (w *ShardWorker) Done() bool {
	return w.master.Done()
}

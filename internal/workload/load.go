// Package workload implements the applications that run on the
// simulated cluster and produce the application-level signals the
// paper correlates CPI against:
//
//   - websearch.go: a three-tier web-search serving tree (leaf,
//     intermediate, root) reporting per-task request latency under a
//     diurnal query load (Figures 3–5).
//   - batch.go: throughput batch jobs reporting transactions/second,
//     whose TPS tracks IPS (Figure 2), plus a Steady workload for
//     tests and padding tenants.
//   - mapreduce.go: MapReduce-style workers with the cap reactions the
//     case studies document — tolerating caps, lame-duck mode with a
//     thread-count burst (Case 5), and self-termination under repeated
//     capping (Case 6).
//   - bimodal.go: the Case 3 service whose CPI swings are self-
//     inflicted by bimodal CPU usage.
//
// All types implement machine.Workload.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// LoadCurve maps wall time to a load level in [0, 1].
type LoadCurve interface {
	Level(t time.Time) float64
}

// ConstantLoad is a flat load curve.
type ConstantLoad float64

// Level implements LoadCurve.
func (c ConstantLoad) Level(time.Time) float64 { return clamp01(float64(c)) }

// DiurnalLoad is the canonical serving-load shape: a sinusoid between
// Trough and Peak over 24 hours, peaking at PeakHour local time, with
// optional multiplicative jitter.
//
// Determinism note: when Jitter > 0, Level draws from RNG, so a
// DiurnalLoad value must NOT be shared between tasks that may tick
// concurrently (the draw would race) or whose tick order is not fixed
// (the draw order would leak between tasks). Give each task its own
// copy with its own stream — see cluster.WebSearchJob for the pattern.
type DiurnalLoad struct {
	Trough   float64 // load level at the quietest hour
	Peak     float64 // load level at the busiest hour
	PeakHour float64 // hour of day of the peak (e.g. 18)
	// Jitter is the relative amplitude of uniform noise (0 disables);
	// RNG must be non-nil when Jitter > 0.
	Jitter float64
	RNG    *rand.Rand
}

// Level implements LoadCurve.
func (d DiurnalLoad) Level(t time.Time) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	mid := (d.Peak + d.Trough) / 2
	amp := (d.Peak - d.Trough) / 2
	level := mid + amp*math.Cos((hour-d.PeakHour)/24*2*math.Pi)
	if d.Jitter > 0 && d.RNG != nil {
		level *= 1 + d.Jitter*(2*d.RNG.Float64()-1)
	}
	return clamp01(level)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// windowStat accumulates a mean over a reporting window.
type windowStat struct {
	sum float64
	n   int
}

func (w *windowStat) add(x float64) { w.sum += x; w.n++ }

func (w *windowStat) mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

func (w *windowStat) reset() { w.sum, w.n = 0, 0 }

package workload

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/interference"
	"repro/internal/timeseries"
)

// Tier identifies a node's position in the web-search serving tree.
type Tier int

const (
	// TierLeaf nodes do the index-scanning compute work.
	TierLeaf Tier = iota
	// TierIntermediate nodes fan out to leaves and merge results.
	TierIntermediate
	// TierRoot nodes front the query and wait on intermediates.
	TierRoot
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierLeaf:
		return "leaf"
	case TierIntermediate:
		return "intermediate"
	case TierRoot:
		return "root"
	default:
		return "tier?"
	}
}

// SearchTree is the shared coordination point of one search job's
// serving tree. Tasks publish their own-tier latency each tick; the
// next tick, upper tiers read the lower tier's aggregate. A typical
// web-search query touches thousands of leaves and its tail latency
// is set by the slowest shards (§2), so tiers read a high percentile
// of the tier below, not the mean.
//
// SearchTree is safe AND order-insensitive under parallel machine
// ticking: publish only appends to the current tick's accumulator
// (the percentile sorts, so append order cannot matter), tail reads
// the previous tick's aggregate (stable for the whole tick), and the
// roll-over happens in EndTick, which the cluster invokes at the
// serial tick barrier via OnTick.
type SearchTree struct {
	mu sync.Mutex
	// current-tick accumulators
	cur [3][]float64
	// previous-tick aggregates (tail latency per tier)
	last [3]float64
}

// NewSearchTree returns an empty tree.
func NewSearchTree() *SearchTree {
	t := &SearchTree{}
	for i := range t.last {
		t.last[i] = 1 // harmless non-zero default before first tick
	}
	return t
}

func (t *SearchTree) publish(tier Tier, latency float64) {
	t.mu.Lock()
	t.cur[tier] = append(t.cur[tier], latency)
	t.mu.Unlock()
}

// tail returns the previous tick's tail latency of a tier.
func (t *SearchTree) tail(tier Tier) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last[tier]
}

// EndTick rolls the current tick's published latencies into the
// aggregates lower tiers read next tick. Call it once per simulation
// tick after all machines have ticked.
func (t *SearchTree) EndTick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for tier := range t.cur {
		if n := len(t.cur[tier]); n > 0 {
			// Tail = 95th percentile of this tick's task latencies:
			// discarded-reply semantics make the tail, not the mean,
			// what upper tiers wait for.
			vals := t.cur[tier]
			t.last[tier] = percentile95(vals)
			t.cur[tier] = vals[:0]
		}
	}
}

func percentile95(xs []float64) float64 {
	n := len(xs)
	if n == 1 {
		return xs[0]
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sort.Float64s(cp)
	rank := (n*95 + 99) / 100 // ceil(0.95n), 1-based
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// SearchTask is one task of a web-search job at a given tier. Its
// CPU demand follows the job's load curve; its reported latency is a
// mix of its own compute time (∝ its CPI) and the tier below's tail
// latency, with the own-compute share shrinking up the tree — which is
// why the paper's Figure 4 sees strong latency↔CPI correlation at the
// leaves and almost none at the root.
type SearchTask struct {
	Tier Tier
	Tree *SearchTree
	// Load drives CPU demand.
	Load LoadCurve
	// MaxCPU is the CPU demand at load 1.0.
	MaxCPU float64
	// Threads is the serving thread count.
	Threads int
	// BaseCPI is the task's uncontended CPI on its platform, used to
	// translate CPI inflation into compute-time inflation.
	BaseCPI float64
	// BaseLatencyMS is the own-compute latency at BaseCPI, in ms.
	BaseLatencyMS float64
	// OwnFraction is the share of reported latency attributable to own
	// compute (defaults by tier: leaf 1.0, intermediate 0.45, root 0.1).
	OwnFraction float64
	// RNG adds per-request service-time noise (nil disables).
	RNG *rand.Rand
	// NoiseSigma is the relative service-time noise (e.g. 0.05).
	NoiseSigma float64

	latency *timeseries.Series
	qps     *timeseries.Series
	stopped bool
}

// NewSearchTask builds a search task with per-tier defaults.
func NewSearchTask(tier Tier, tree *SearchTree, load LoadCurve, maxCPU, baseCPI float64, rng *rand.Rand) *SearchTask {
	ownFrac := 1.0
	baseLat := 30.0
	threads := 24
	switch tier {
	case TierIntermediate:
		ownFrac = 0.45
		baseLat = 12.0
		threads = 32
	case TierRoot:
		ownFrac = 0.10
		baseLat = 5.0
		threads = 40
	}
	return &SearchTask{
		Tier:          tier,
		Tree:          tree,
		Load:          load,
		MaxCPU:        maxCPU,
		Threads:       threads,
		BaseCPI:       baseCPI,
		BaseLatencyMS: baseLat,
		OwnFraction:   ownFrac,
		RNG:           rng,
		NoiseSigma:    0.05,
		latency:       timeseries.New(),
		qps:           timeseries.New(),
	}
}

// Demand implements machine.Workload.
func (s *SearchTask) Demand(now time.Time) (float64, int) {
	if s.stopped {
		return 0, 0
	}
	level := 1.0
	if s.Load != nil {
		level = s.Load.Level(now)
	}
	// Serving systems keep a floor of background work (health checks,
	// index refresh) even at trough load.
	cpu := s.MaxCPU * (0.15 + 0.85*level)
	return cpu, s.Threads
}

// Deliver implements machine.Workload: compute this tick's reported
// latency from own CPI and the tier below.
func (s *SearchTask) Deliver(now time.Time, granted float64, dt time.Duration, res interference.Result) {
	base := s.BaseCPI
	if base <= 0 {
		base = 1
	}
	own := s.BaseLatencyMS * (res.CPI / base)
	if s.RNG != nil && s.NoiseSigma > 0 {
		own *= 1 + s.NoiseSigma*s.RNG.NormFloat64()
		if own < 0 {
			own = 0
		}
	}
	var lower float64
	switch s.Tier {
	case TierIntermediate:
		lower = s.Tree.tail(TierLeaf)
	case TierRoot:
		lower = s.Tree.tail(TierIntermediate)
	}
	lat := own
	if s.Tier != TierLeaf {
		lat = s.OwnFraction*own + (1-s.OwnFraction)*(lower+own*0.1)
	}
	s.Tree.publish(s.Tier, lat)
	_ = s.latency.Append(now, lat)
	level := 1.0
	if s.Load != nil {
		level = s.Load.Level(now)
	}
	_ = s.qps.Append(now, level*granted*100) // ∝ served queries
}

// Done implements machine.Workload.
func (s *SearchTask) Done() bool { return s.stopped }

// Stop drains the task (controlled shutdown).
func (s *SearchTask) Stop() { s.stopped = true }

// Latency returns the reported per-tick latency series (ms).
func (s *SearchTask) Latency() *timeseries.Series { return s.latency }

// QPS returns the served-query-rate series.
func (s *SearchTask) QPS() *timeseries.Series { return s.qps }

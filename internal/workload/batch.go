package workload

import (
	"math"
	"time"

	"repro/internal/interference"
	"repro/internal/timeseries"
)

// Steady is the simplest workload: a constant CPU demand with a fixed
// thread count, running until Stop is called. It stands in for the
// long tail of miscellaneous tenants on a machine.
type Steady struct {
	CPU     float64
	Threads int
	stopped bool
}

// Demand implements machine.Workload.
func (s *Steady) Demand(time.Time) (float64, int) { return s.CPU, s.Threads }

// Deliver implements machine.Workload.
func (s *Steady) Deliver(time.Time, float64, time.Duration, interference.Result) {}

// Done implements machine.Workload.
func (s *Steady) Done() bool { return s.stopped }

// Stop makes the workload exit at the next tick.
func (s *Steady) Stop() { s.stopped = true }

// Pulse is a duty-cycled workload: OnCPU demand for OnFor, then OffCPU
// for OffFor, repeating. Bursty batch work (video transcode spurts,
// periodic scans) looks like this, and it is what makes antagonist
// correlation discriminative: the victim's CPI spikes line up with the
// pulses, while steady bystanders accumulate negative correlation in
// the quiet phases.
type Pulse struct {
	OnCPU   float64
	OffCPU  float64
	OnFor   time.Duration
	OffFor  time.Duration
	Threads int
	// Phase offsets the duty cycle, so co-located pulses need not be
	// synchronized.
	Phase time.Duration

	epoch    time.Time
	hasEpoch bool
	stopped  bool
}

// Demand implements machine.Workload.
func (p *Pulse) Demand(now time.Time) (float64, int) {
	if p.stopped {
		return 0, 0
	}
	if !p.hasEpoch {
		p.epoch = now
		p.hasEpoch = true
	}
	cycle := p.OnFor + p.OffFor
	if cycle <= 0 {
		return p.OnCPU, p.Threads
	}
	if (now.Sub(p.epoch)+p.Phase)%cycle < p.OnFor {
		return p.OnCPU, p.Threads
	}
	return p.OffCPU, p.Threads
}

// Deliver implements machine.Workload.
func (p *Pulse) Deliver(time.Time, float64, time.Duration, interference.Result) {}

// Done implements machine.Workload.
func (p *Pulse) Done() bool { return p.stopped }

// Stop makes the workload exit at the next tick.
func (p *Pulse) Stop() { p.stopped = true }

// Batch is a throughput-oriented batch worker: it demands a fixed CPU
// rate and converts the instructions it executes into completed
// transactions at a fixed instructions-per-transaction cost. Because
// transactions are purely instruction-driven, its TPS tracks its IPS —
// the Figure 2 relationship (r = 0.97) — with a small amount of
// application-level jitter available for realism.
type Batch struct {
	// CPU is the demanded rate in CPU-sec/sec.
	CPU float64
	// Threads is the runnable thread count while working.
	Threads int
	// InstructionsPerTx converts instructions to transactions
	// (e.g. 50e6 for a medium transaction).
	InstructionsPerTx float64
	// ClockGHz must match the machine's clock so instructions can be
	// derived from granted CPU time and CPI.
	ClockGHz float64
	// TotalTx ends the job after this many transactions (0 = endless).
	TotalTx float64
	// Window is the TPS/IPS reporting window (default 1 minute).
	Window time.Duration

	completed  float64
	tps        *timeseries.Series
	ips        *timeseries.Series
	winTx      float64
	winInstr   float64
	winStart   time.Time
	haveWindow bool
}

// NewBatch returns a Batch with sane defaults filled in.
func NewBatch(cpu float64, threads int, clockGHz float64) *Batch {
	return &Batch{
		CPU:               cpu,
		Threads:           threads,
		InstructionsPerTx: 50e6,
		ClockGHz:          clockGHz,
		Window:            time.Minute,
	}
}

// Demand implements machine.Workload.
func (b *Batch) Demand(time.Time) (float64, int) {
	if b.Done() {
		return 0, 0
	}
	return b.CPU, b.Threads
}

// Deliver implements machine.Workload: granted CPU time at the
// observed CPI yields instructions, which yield transactions.
func (b *Batch) Deliver(now time.Time, granted float64, dt time.Duration, res interference.Result) {
	if b.Window <= 0 {
		b.Window = time.Minute
	}
	if !b.haveWindow {
		b.winStart = now
		b.haveWindow = true
		b.tps = timeseries.New()
		b.ips = timeseries.New()
	}
	cpi := res.CPI
	if cpi <= 0 {
		cpi = 1
	}
	instr := granted * dt.Seconds() * b.ClockGHz * 1e9 / cpi
	tx := instr / b.InstructionsPerTx
	b.completed += tx
	b.winTx += tx
	b.winInstr += instr
	if now.Sub(b.winStart) >= b.Window {
		sec := now.Sub(b.winStart).Seconds()
		_ = b.tps.Append(now, b.winTx/sec)
		_ = b.ips.Append(now, b.winInstr/sec)
		b.winTx, b.winInstr = 0, 0
		b.winStart = now
	}
}

// Done implements machine.Workload.
func (b *Batch) Done() bool {
	return b.TotalTx > 0 && b.completed >= b.TotalTx
}

// Completed returns the number of transactions finished so far.
func (b *Batch) Completed() float64 { return b.completed }

// Progress returns completion in [0,1] (0 for endless jobs).
func (b *Batch) Progress() float64 {
	if b.TotalTx <= 0 {
		return 0
	}
	return math.Min(1, b.completed/b.TotalTx)
}

// TPS returns the per-window transactions-per-second series (nil
// before the first Deliver).
func (b *Batch) TPS() *timeseries.Series { return b.tps }

// IPS returns the per-window instructions-per-second series (nil
// before the first Deliver).
func (b *Batch) IPS() *timeseries.Series { return b.ips }

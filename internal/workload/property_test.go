package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/interference"
)

// Property tests: load curves stay inside [0, 1] and are periodic;
// no workload generator ever emits a negative, NaN, or infinite
// demand, whatever sequence of grants and interference it is fed.

func sane(t *testing.T, who string, cpu float64, threads int) {
	t.Helper()
	if math.IsNaN(cpu) || math.IsInf(cpu, 0) || cpu < 0 {
		t.Fatalf("%s: demand cpu = %v", who, cpu)
	}
	if threads < 0 {
		t.Fatalf("%s: demand threads = %d", who, threads)
	}
}

func TestDiurnalLoadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 200; trial++ {
		d := DiurnalLoad{
			Trough:   rng.Float64() * 1.5, // deliberately allows out-of-range inputs
			Peak:     rng.Float64() * 1.5,
			PeakHour: rng.Float64() * 24,
			Jitter:   rng.Float64() * 0.5,
			RNG:      rand.New(rand.NewSource(int64(trial))),
		}
		for i := 0; i < 100; i++ {
			at := base.Add(time.Duration(rng.Int63n(int64(48 * time.Hour))))
			l := d.Level(at)
			if math.IsNaN(l) || l < 0 || l > 1 {
				t.Fatalf("trial %d: Level(%v) = %v outside [0,1] (%+v)", trial, at, l, d)
			}
		}
	}
}

func TestDiurnalLoadPeriodicityAndShape(t *testing.T) {
	d := DiurnalLoad{Trough: 0.2, Peak: 0.9, PeakHour: 18}
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	peak := 0.0
	peakHour := -1
	for h := 0; h < 24; h++ {
		at := base.Add(time.Duration(h) * time.Hour)
		l := d.Level(at)
		// Jitter-free diurnal load must repeat every 24 hours exactly.
		if next := d.Level(at.Add(24 * time.Hour)); next != l {
			t.Fatalf("hour %d: Level differs across days: %v vs %v", h, l, next)
		}
		if l > peak {
			peak, peakHour = l, h
		}
	}
	if peakHour != 18 {
		t.Errorf("peak at hour %d, want 18", peakHour)
	}
	if trough := d.Level(base.Add(6 * time.Hour)); math.Abs(trough-0.2) > 0.01 {
		t.Errorf("level at antipodal hour = %v, want ~0.2", trough)
	}
	if math.Abs(peak-0.9) > 0.01 {
		t.Errorf("peak level = %v, want ~0.9", peak)
	}
}

func TestConstantLoadClamped(t *testing.T) {
	for _, in := range []float64{-1, 0, 0.5, 1, 7} {
		l := ConstantLoad(in).Level(time.Now())
		if l < 0 || l > 1 {
			t.Errorf("ConstantLoad(%v).Level = %v", in, l)
		}
	}
}

// TestWorkloadsNeverEmitNegativeOrNaN drives every workload generator
// through randomized grant/interference sequences — including hostile
// ones (zero grants, huge grants, heavy interference) — and asserts
// demand sanity at every tick.
func TestWorkloadsNeverEmitNegativeOrNaN(t *testing.T) {
	base := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	tick := time.Second

	builders := map[string]func(rng *rand.Rand) (machineWorkload, func()){
		"steady": func(rng *rand.Rand) (machineWorkload, func()) {
			return &Steady{CPU: rng.Float64() * 8, Threads: rng.Intn(4) + 1}, nil
		},
		"pulse": func(rng *rand.Rand) (machineWorkload, func()) {
			return &Pulse{
				OnCPU:   rng.Float64() * 8,
				OffCPU:  rng.Float64(),
				OnFor:   time.Duration(rng.Intn(120)+1) * time.Second,
				OffFor:  time.Duration(rng.Intn(120)+1) * time.Second,
				Threads: rng.Intn(4) + 1,
				Phase:   time.Duration(rng.Intn(60)) * time.Second,
			}, nil
		},
		"batch": func(rng *rand.Rand) (machineWorkload, func()) {
			return NewBatch(rng.Float64()*4+0.1, rng.Intn(4)+1, 2.0), nil
		},
		"bimodal": func(rng *rand.Rand) (machineWorkload, func()) {
			return NewBimodal(), nil
		},
		"mapreduce-tolerate": func(rng *rand.Rand) (machineWorkload, func()) {
			return NewMapReduce(rng.Float64()*4+0.1, ReactTolerate), nil
		},
		"mapreduce-lameduck": func(rng *rand.Rand) (machineWorkload, func()) {
			return NewMapReduce(rng.Float64()*4+0.1, ReactLameDuck), nil
		},
		"mapreduce-exit": func(rng *rand.Rand) (machineWorkload, func()) {
			return NewMapReduce(rng.Float64()*4+0.1, ReactExit), nil
		},
		"websearch-leaf": func(rng *rand.Rand) (machineWorkload, func()) {
			tree := NewSearchTree()
			load := DiurnalLoad{Trough: 0.3, Peak: 1, PeakHour: 18, Jitter: 0.1,
				RNG: rand.New(rand.NewSource(rng.Int63()))}
			return NewSearchTask(TierLeaf, tree, load, 4, 1.2, rng), tree.EndTick
		},
		"websearch-root": func(rng *rand.Rand) (machineWorkload, func()) {
			tree := NewSearchTree()
			return NewSearchTask(TierRoot, tree, ConstantLoad(0.8), 2, 0.8, rng), tree.EndTick
		},
	}

	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)*31 + 7))
				w, endTick := build(rng)
				now := base
				for i := 0; i < 400; i++ {
					cpu, threads := w.Demand(now)
					sane(t, name, cpu, threads)
					// Grant regimes: starvation, partial, generous.
					var granted float64
					switch rng.Intn(3) {
					case 0:
						granted = 0
					case 1:
						granted = cpu * rng.Float64()
					default:
						granted = cpu * (1 + rng.Float64())
					}
					res := interference.Result{
						CPI:      0.5 + rng.Float64()*5,
						L3MPKI:   rng.Float64() * 40,
						Pressure: rng.Float64(),
					}
					w.Deliver(now, granted, tick, res)
					if endTick != nil {
						endTick()
					}
					now = now.Add(tick)
					if w.Done() {
						break
					}
				}
				// Done must be stable, not oscillating.
				if w.Done() {
					cpu, threads := w.Demand(now)
					sane(t, name+" after done", cpu, threads)
					if !w.Done() {
						t.Fatalf("%s: Done flapped back to false", name)
					}
				}
			}
		})
	}
}

// machineWorkload mirrors machine.Workload without importing it —
// keeping this package free of an upward dependency.
type machineWorkload interface {
	Demand(now time.Time) (cpu float64, threads int)
	Deliver(now time.Time, granted float64, dt time.Duration, res interference.Result)
	Done() bool
}

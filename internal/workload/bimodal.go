package workload

import (
	"time"

	"repro/internal/interference"
)

// Bimodal is the Case 3 workload: a front-end service whose CPU usage
// alternates between a busy level and a near-idle level on a fixed
// period. Paired with an interference.Profile carrying
// LowUsageInflation, its CPI swings inversely with its own usage —
// high CPI at low usage — with no antagonist involved. CPI² must not
// blame a neighbour for it; the MinCPUUsage filter exists exactly for
// this pattern.
type Bimodal struct {
	// HighCPU and LowCPU are the two demand levels (CPU-sec/sec).
	HighCPU float64
	LowCPU  float64
	// Period is the duration of each phase (default 10 minutes).
	Period time.Duration
	// Threads is the constant serving-thread count.
	Threads int

	epoch    time.Time
	hasEpoch bool
	stopped  bool
}

// NewBimodal returns the Case 3 shape: 0.3 CPU busy phases against
// 0.05 CPU quiet phases, 10 minutes each.
func NewBimodal() *Bimodal {
	return &Bimodal{HighCPU: 0.3, LowCPU: 0.05, Period: 10 * time.Minute, Threads: 6}
}

// Demand implements machine.Workload.
func (b *Bimodal) Demand(now time.Time) (float64, int) {
	if b.stopped {
		return 0, 0
	}
	if !b.hasEpoch {
		b.epoch = now
		b.hasEpoch = true
	}
	period := b.Period
	if period <= 0 {
		period = 10 * time.Minute
	}
	phase := now.Sub(b.epoch) / period
	if phase%2 == 0 {
		return b.HighCPU, b.Threads
	}
	return b.LowCPU, b.Threads
}

// Deliver implements machine.Workload.
func (b *Bimodal) Deliver(time.Time, float64, time.Duration, interference.Result) {}

// Done implements machine.Workload.
func (b *Bimodal) Done() bool { return b.stopped }

// Stop makes the workload exit at the next tick.
func (b *Bimodal) Stop() { b.stopped = true }

// CaseThreeProfile returns an interference profile matching Case 3's
// observed behaviour: CPI ≈ 3 while busy, rising toward ≈ 10 as usage
// approaches zero.
func CaseThreeProfile() *interference.Profile {
	return &interference.Profile{
		DefaultCPI:        3.0,
		CacheFootprint:    1.5,
		MemBandwidth:      0.8,
		Sensitivity:       0.4,
		BaseL3MPKI:        4,
		LowUsageInflation: 2.4,
		LowUsageThreshold: 0.28,
	}
}

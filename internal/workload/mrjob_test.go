package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/interference"
)

// driveWorkers delivers granted CPU to each worker once per second.
// grants maps worker index → CPU rate (missing = full demand).
func driveWorkers(m *MRMaster, workers []*ShardWorker, seconds int, grants map[int]float64) time.Time {
	now := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < seconds && !m.Done(); s++ {
		for i, w := range workers {
			demand, _ := w.Demand(now)
			g := demand
			if v, ok := grants[i]; ok && v < demand {
				g = v
			}
			w.Deliver(now, g, time.Second, interference.Result{CPI: 1.5})
		}
		now = now.Add(time.Second)
	}
	return now
}

func TestMRJobCompletesAllShards(t *testing.T) {
	m := NewMRMaster(8, 60) // 8 shards × 60 CPU-sec
	var workers []*ShardWorker
	for i := 0; i < 4; i++ {
		workers = append(workers, m.NewWorker(2.0))
	}
	driveWorkers(m, workers, 600, nil)
	if !m.Done() {
		t.Fatal("job never finished")
	}
	done, total := m.Stats()
	if done != total || total != 8 {
		t.Errorf("shards = %d/%d", done, total)
	}
	// 8 shards × 60 CPU-sec / (4 workers × 2 CPU) = 60s ideal; two
	// waves of assignment → ~120s.
	if m.Backups() != 0 {
		t.Errorf("backups = %d on a healthy run", m.Backups())
	}
	for _, w := range workers {
		if !w.Done() {
			t.Error("worker not done after job completion")
		}
		if cpu, th := w.Demand(time.Now()); cpu != 0 || th != 0 {
			t.Error("finished worker still demanding")
		}
	}
	if !strings.Contains(m.String(), "8/8") {
		t.Errorf("String = %q", m.String())
	}
}

func TestMRJobBackupsCoverCappedWorker(t *testing.T) {
	// The §2 argument: one worker is starved (hard-capped); the master
	// launches backups and the job still finishes in reasonable time.
	run := func(capWorker bool) (finish float64, backups int) {
		m := NewMRMaster(8, 60)
		var workers []*ShardWorker
		for i := 0; i < 4; i++ {
			workers = append(workers, m.NewWorker(2.0))
		}
		grants := map[int]float64{}
		if capWorker {
			grants[0] = 0.02 // hard-capped at ~1% of demand
		}
		start := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
		end := driveWorkers(m, workers, 3600, grants)
		return end.Sub(start).Seconds(), m.Backups()
	}
	healthyTime, healthyBackups := run(false)
	cappedTime, cappedBackups := run(true)
	if healthyBackups != 0 {
		t.Errorf("healthy backups = %d", healthyBackups)
	}
	if cappedBackups == 0 {
		t.Fatal("no backups despite a starved worker")
	}
	// Without backups the capped worker's shards would take
	// 60/0.02 = 3000s; with them the job must finish in a small
	// multiple of the healthy time.
	if cappedTime > 3*healthyTime {
		t.Errorf("capped job took %.0fs vs healthy %.0fs — stragglers not covered", cappedTime, healthyTime)
	}
	if cappedTime >= 2900 {
		t.Errorf("capped job took %.0fs — looks like it waited for the capped copy", cappedTime)
	}
}

func TestMRJobIdleWorkersHeartbeat(t *testing.T) {
	m := NewMRMaster(1, 30)
	w1 := m.NewWorker(2.0)
	w2 := m.NewWorker(2.0)
	now := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	// First demand assigns the only shard to w1; w2 idles.
	if cpu, _ := w1.Demand(now); cpu != 2.0 {
		t.Fatalf("w1 demand = %v", cpu)
	}
	cpu, threads := w2.Demand(now)
	if cpu != 0.05 || threads != 1 {
		t.Errorf("idle worker demand = %v/%d, want heartbeat", cpu, threads)
	}
}

func TestMRJobBackupPathReassignsLaggardShard(t *testing.T) {
	m := NewMRMaster(2, 60)
	slow := m.NewWorker(2.0)
	fast := m.NewWorker(2.0)
	now := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	// Assign both shards.
	slow.Demand(now)
	fast.Demand(now)
	// Starve slow long enough for its rate to collapse; fast finishes
	// its shard and should pick up a backup of slow's.
	for s := 0; s < 120 && !m.Done(); s++ {
		slow.Deliver(now, 0.01, time.Second, interference.Result{CPI: 1.5})
		d, _ := fast.Demand(now)
		fast.Deliver(now, d, time.Second, interference.Result{CPI: 1.5})
		now = now.Add(time.Second)
	}
	if m.Backups() == 0 {
		t.Fatal("fast worker never backed up the laggard's shard")
	}
	if !m.Done() {
		// Fast at 2 CPU: shard 1 in 30s, backup of shard 0 in 30s more.
		t.Fatal("job unfinished despite the backup")
	}
}

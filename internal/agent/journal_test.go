package agent

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func journalEntry(task string, at time.Time) core.CapJournalEntry {
	return core.CapJournalEntry{
		Op: core.CapOpCap, Time: at, Task: task, Victim: "search/0",
		Quota: 0.1, Expires: at.Add(5 * time.Minute), Round: 1,
	}
}

func TestFileCapJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caps.journal")
	j, recovered, torn, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 || torn != 0 {
		t.Fatalf("fresh journal: recovered=%d torn=%d", len(recovered), torn)
	}
	e1 := journalEntry("mr/0", t0)
	e2 := core.CapJournalEntry{Op: core.CapOpUncap, Time: t0.Add(time.Minute), Task: "mr/0", Reason: "expired"}
	e3 := journalEntry("mr/1", t0.Add(2*time.Minute))
	for _, e := range []core.CapJournalEntry{e1, e2, e3} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(e1); err == nil {
		t.Error("append after close should fail")
	}

	j2, recovered, torn, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 0 || len(recovered) != 3 {
		t.Fatalf("recovered=%d torn=%d", len(recovered), torn)
	}
	if recovered[0].Task != "mr/0" || recovered[1].Reason != "expired" || recovered[2].Task != "mr/1" {
		t.Errorf("recovered = %+v", recovered)
	}
	live, _ := core.ReplayCapEntries(recovered)
	if len(live) != 1 {
		t.Errorf("live caps = %d, want 1 (mr/1)", len(live))
	}
}

func TestFileCapJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caps.journal")
	j, _, _, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry("mr/0", t0)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append: a torn, non-JSON trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"cap","task":"mr/9","quo`)
	f.Close()

	j2, recovered, torn, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
	if len(recovered) != 1 || recovered[0].Task != "mr/0" {
		t.Errorf("recovered = %+v, want the intact prefix only", recovered)
	}
	// The journal stays appendable after recovery.
	if err := j2.Append(journalEntry("mr/1", t0.Add(time.Minute))); err != nil {
		t.Fatal(err)
	}
}

func TestFileCapJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caps.journal")
	j, _, _, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cap/uncap churn on many tasks, two caps left live at the end.
	for i := 0; i < 20; i++ {
		task := model.TaskID{Job: "mr", Index: i % 4}.String()
		if err := j.Append(journalEntry(task, t0.Add(time.Duration(i)*time.Second))); err != nil {
			t.Fatal(err)
		}
		if i%4 >= 2 { // tasks 2,3 always get uncapped again
			if err := j.Append(core.CapJournalEntry{Op: core.CapOpUncap, Time: t0, Task: task}); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.mu.Lock()
	err = j.compactLocked()
	j.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if n := j.Len(); n != 2 {
		t.Errorf("entries after compaction = %d, want 2 live caps", n)
	}
	// Post-compaction appends land after the compacted prefix.
	if err := j.Append(journalEntry("mr/7", t0.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recovered, torn, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Errorf("torn = %d after compaction", torn)
	}
	live, invalid := core.ReplayCapEntries(recovered)
	if invalid != 0 || len(live) != 3 {
		t.Errorf("replay: live=%d invalid=%d (entries %+v)", len(live), invalid, recovered)
	}
}

// TestAgentJournalRestartReconciliation is the agent-level crash-safety
// property: an agent that journals its caps and then dies is replaced
// by one that replays the journal and re-adopts the live cap without
// re-detecting — zero enforcement gap — while journal entries for
// vanished tasks are released as orphans.
func TestAgentJournalRestartReconciliation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caps.journal")
	a, m, _ := newRig(t, nil)
	j, _, _, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Manager().SetJournal(j)
	installSearchSpec(a)
	aid := model.TaskID{Job: "mr", Index: 0}
	if err := m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40}); err != nil {
		t.Fatal(err)
	}
	a.RegisterTask(aid, mrJob)

	now := t0
	var capped bool
	for s := 0; s < 900 && !capped; s++ {
		m.Tick(now, time.Second)
		a.Tick(now)
		capped = m.IsCapped(aid)
		now = now.Add(time.Second)
	}
	if !capped {
		t.Fatal("first agent never capped")
	}
	j.Close() // crash: agent gone, journal on disk, cgroup cap leased

	// Restart: recover the journal, rebuild the agent over the same
	// machine, reconcile before the first tick.
	j2, recovered, torn, err := OpenCapJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if torn != 0 || len(recovered) == 0 {
		t.Fatalf("recovered=%d torn=%d", len(recovered), torn)
	}
	a2 := New(m, core.DefaultParams(), nil)
	a2.Manager().SetJournal(j2)
	for _, id := range m.Tasks() {
		a2.RegisterTask(id, m.Task(id).Job)
	}
	installSearchSpec(a2)
	adopted, orphaned := a2.Reconcile(now, recovered)
	if len(adopted) != 1 || adopted[0] != aid {
		t.Fatalf("adopted = %v, want [%v] (orphaned %v)", adopted, aid, orphaned)
	}
	if len(orphaned) != 0 {
		t.Errorf("orphaned = %v", orphaned)
	}
	if !m.IsCapped(aid) {
		t.Fatal("cap lost across restart")
	}
	if caps := a2.Manager().Enforcer().ActiveCaps(); len(caps) != 1 {
		t.Fatalf("ActiveCaps after reconcile = %v", caps)
	}

	// The adopted cap keeps being renewed and expires on schedule —
	// within CapDuration of its original application, not of restart.
	expireBy := now.Add(core.DefaultParams().CapDuration + time.Minute)
	for !now.After(expireBy) && m.IsCapped(aid) {
		m.Tick(now, time.Second)
		a2.Tick(now)
		now = now.Add(time.Second)
	}
	if m.IsCapped(aid) {
		t.Error("adopted cap never expired")
	}

	// A journal mentioning a vanished task orphans it instead of
	// resurrecting the cap.
	ghost := journalEntry("ghost/0", now)
	ghost.Expires = now.Add(time.Hour)
	adopted, orphaned = a2.Reconcile(now, []core.CapJournalEntry{ghost})
	if len(adopted) != 0 || len(orphaned) != 1 {
		t.Errorf("ghost reconcile: adopted=%v orphaned=%v", adopted, orphaned)
	}
}

package agent

import (
	"testing"

	"repro/internal/obs"
)

// TestLocalMetricsDrainTo checks the per-machine agent shard folds into
// the shared registry set and is reset by the drain — the contract the
// cluster's serial commit phase relies on.
func TestLocalMetricsDrainTo(t *testing.T) {
	reg := obs.NewRegistry()
	shared := NewMetrics(reg)
	shard := NewLocalMetrics()

	shard.Tasks.Add(3)
	shard.TickSeconds.Observe(0.001)
	shard.TickSeconds.Observe(0.002)

	shard.DrainTo(shared)

	if got := shared.Tasks.Value(); got != 3 {
		t.Errorf("Tasks = %v, want 3", got)
	}
	if got := shared.TickSeconds.Count(); got != 2 {
		t.Errorf("TickSeconds count = %v, want 2", got)
	}
	if got := shard.Tasks.Value(); got != 0 {
		t.Errorf("shard Tasks after drain = %v, want 0", got)
	}
	if got := shard.TickSeconds.Count(); got != 0 {
		t.Errorf("shard TickSeconds count after drain = %v, want 0", got)
	}

	// A task exiting moves the shard negative; the delta drain keeps
	// the shared gauge consistent with the fleet total.
	shard.Tasks.Dec()
	shard.DrainTo(shared)
	if got := shared.Tasks.Value(); got != 2 {
		t.Errorf("Tasks after exit drain = %v, want 2", got)
	}
}

package agent

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/workload"
)

// controlClient is a minimal test client for the control protocol.
type controlClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialControl(t *testing.T, addr string) *controlClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &controlClient{conn: conn, r: bufio.NewReader(conn)}
}

// roundTrip sends one command and reads the full response (single line
// or multi-line ending with ".").
func (c *controlClient) roundTrip(t *testing.T, cmd string) []string {
	t.Helper()
	if _, err := c.conn.Write([]byte(cmd + "\n")); err != nil {
		t.Fatal(err)
	}
	first, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{strings.TrimRight(first, "\n")}
	if lines[0] != "ok" { // single-line response
		return lines
	}
	for {
		l, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		l = strings.TrimRight(l, "\n")
		if l == "." {
			return lines
		}
		lines = append(lines, l)
	}
}

func controlRig(t *testing.T) (*controlClient, *Agent) {
	t.Helper()
	a, m, _ := newRig(t, nil)
	_ = m
	srv := NewControlServer(a, nil)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return dialControl(t, addr), a
}

func TestControlStatus(t *testing.T) {
	c, _ := controlRig(t)
	resp := c.roundTrip(t, "STATUS")
	if !strings.HasPrefix(resp[0], "ok machine=m1") {
		t.Errorf("STATUS = %q", resp[0])
	}
	if !strings.Contains(resp[0], "tasks=1") {
		t.Errorf("STATUS missing task count: %q", resp[0])
	}
}

func TestControlTasksAndCaps(t *testing.T) {
	c, a := controlRig(t)
	aid := model.TaskID{Job: "mr", Index: 0}
	_ = a.Machine().AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 2, Threads: 4})
	a.RegisterTask(aid, mrJob)

	lines := c.roundTrip(t, "TASKS")
	if len(lines) != 3 { // ok + 2 tasks
		t.Fatalf("TASKS = %v", lines)
	}
	resp := c.roundTrip(t, "CAP mr/0 0.1")
	if !strings.HasPrefix(resp[0], "ok capped") {
		t.Fatalf("CAP = %q", resp[0])
	}
	if !a.Machine().IsCapped(aid) {
		t.Error("task not capped")
	}
	lines = c.roundTrip(t, "TASKS")
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "CAPPED") {
		t.Errorf("TASKS missing CAPPED flag: %s", joined)
	}
	resp = c.roundTrip(t, "UNCAP mr/0")
	if !strings.HasPrefix(resp[0], "ok uncapped") {
		t.Fatalf("UNCAP = %q", resp[0])
	}
	if a.Machine().IsCapped(aid) {
		t.Error("task still capped")
	}
}

func TestControlErrors(t *testing.T) {
	c, _ := controlRig(t)
	cases := []string{
		"",
		"BOGUS",
		"CAP",
		"CAP badid 0.1",
		"CAP mr/x 0.1",
		"CAP mr/0 -1",
		"UNCAP",
		"UNCAP noslash",
		"CAP ghost/0 0.1", // unknown task
	}
	for _, cmd := range cases {
		resp := c.roundTrip(t, cmd)
		if !strings.HasPrefix(resp[0], "err") {
			t.Errorf("command %q: got %q, want err", cmd, resp[0])
		}
	}
}

func TestControlIncidents(t *testing.T) {
	c, a := controlRig(t)
	installSearchSpec(a)
	m := a.Machine()
	aid := model.TaskID{Job: "mr", Index: 0}
	_ = m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40})
	a.RegisterTask(aid, mrJob)
	runSim(a, m, t0, 700)

	lines := c.roundTrip(t, "INCIDENTS 5")
	if len(lines) < 2 {
		t.Fatalf("no incidents returned: %v", lines)
	}
	if !strings.Contains(lines[1], `"victim":"search/0"`) {
		t.Errorf("incident json = %s", lines[1])
	}
	caps := c.roundTrip(t, "CAPS")
	if len(caps) < 1 {
		t.Fatal("CAPS failed")
	}
	rel := c.roundTrip(t, "RELEASE-ALL")
	if !strings.HasPrefix(rel[0], "ok released") {
		t.Errorf("RELEASE-ALL = %q", rel[0])
	}
}

func TestParseTaskID(t *testing.T) {
	id, err := parseTaskID("websearch-leaf/42")
	if err != nil || id.Job != "websearch-leaf" || id.Index != 42 {
		t.Errorf("parse = %v, %v", id, err)
	}
	for _, bad := range []string{"", "noslash", "/3", "job/", "job/x"} {
		if _, err := parseTaskID(bad); err == nil {
			t.Errorf("parseTaskID(%q) accepted", bad)
		}
	}
}

package agent

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interference"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

var t0 = time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)

var (
	searchJob = model.Job{Name: "search", Class: model.ClassLatencySensitive, Priority: model.PriorityProduction}
	mrJob     = model.Job{Name: "mr", Class: model.ClassBatch, Priority: model.PriorityBatch}
)

func victimProfile() *interference.Profile {
	return &interference.Profile{DefaultCPI: 1.0, CacheFootprint: 1, MemBandwidth: 0.5, Sensitivity: 1.2, BaseL3MPKI: 2}
}

func antagonistProfile() *interference.Profile {
	return &interference.Profile{DefaultCPI: 1.5, CacheFootprint: 10, MemBandwidth: 8, Sensitivity: 0.2, BaseL3MPKI: 12}
}

// installSearchSpec gives the agent a robust spec matching the
// victim's uncontended CPI.
func installSearchSpec(a *Agent) {
	a.DeliverSpec(model.Spec{
		Job: "search", Platform: model.PlatformA,
		NumSamples: 100000, NumTasks: 300,
		CPIMean: 1.0, CPIStddev: 0.08,
	})
}

// newRig builds a machine+agent with a victim search task.
func newRig(t *testing.T, sink pipeline.SampleSink) (*Agent, *machine.Machine, model.TaskID) {
	t.Helper()
	m := machine.New("m1", interference.DefaultMachine(model.PlatformA), 8, nil)
	a := New(m, core.DefaultParams(), sink)
	vid := model.TaskID{Job: "search", Index: 0}
	err := m.AddTask(vid, searchJob, victimProfile(), &workload.Steady{CPU: 1.2, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	a.RegisterTask(vid, searchJob)
	return a, m, vid
}

// runSim advances machine and agent together, one second at a time.
func runSim(a *Agent, m *machine.Machine, start time.Time, seconds int) []core.Incident {
	var incidents []core.Incident
	now := start
	for s := 0; s < seconds; s++ {
		m.Tick(now, time.Second)
		incidents = append(incidents, a.Tick(now)...)
		now = now.Add(time.Second)
	}
	return incidents
}

func TestAgentSamplesAndPublishes(t *testing.T) {
	bus := pipeline.NewBus(core.NewSpecBuilder(core.DefaultParams()))
	a, m, _ := newRig(t, bus)
	runSim(a, m, t0, 130)
	received, dropped := bus.Stats()
	if received < 2 {
		t.Errorf("published samples = %d, want ≥2 (two windows)", received)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
}

func TestAgentDetectsAndCapsAntagonist(t *testing.T) {
	a, m, vid := newRig(t, nil)
	installSearchSpec(a)

	// Quiet first few minutes (healthy baseline), then the antagonist
	// arrives and hammers the cache.
	runSim(a, m, t0, 180)
	aid := model.TaskID{Job: "mr", Index: 0}
	if err := m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40}); err != nil {
		t.Fatal(err)
	}
	a.RegisterTask(aid, mrJob)

	// Advance second by second until the first incident fires.
	now := t0.Add(180 * time.Second)
	var inc *core.Incident
	for s := 0; s < 900 && inc == nil; s++ {
		m.Tick(now, time.Second)
		if got := a.Tick(now); len(got) > 0 {
			inc = &got[0]
		}
		now = now.Add(time.Second)
	}
	if inc == nil {
		t.Fatal("no incidents despite sustained interference")
	}
	if inc.Victim != vid {
		t.Errorf("victim = %v", inc.Victim)
	}
	if len(inc.Suspects) == 0 || inc.Suspects[0].Task != aid {
		t.Fatalf("top suspect = %+v", inc.Suspects)
	}
	if inc.Decision.Action != core.ActionCap {
		t.Fatalf("decision = %+v", inc.Decision)
	}
	if !m.IsCapped(aid) {
		t.Error("antagonist not actually capped on the machine")
	}

	// The cap expires after 5 minutes of agent ticks; a re-cap needs 3
	// fresh violations (≥3 more minutes), so just past expiry the task
	// must be uncapped.
	runSim(a, m, now, 302)
	if m.IsCapped(aid) {
		t.Error("cap never expired")
	}
}

func TestAgentVictimCPIRecoversUnderCap(t *testing.T) {
	a, m, vid := newRig(t, nil)
	installSearchSpec(a)
	runSim(a, m, t0, 120)
	aid := model.TaskID{Job: "mr", Index: 0}
	_ = m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40})
	a.RegisterTask(aid, mrJob)
	runSim(a, m, t0.Add(120*time.Second), 900)

	cpiSeries := a.Manager().CPISeries(vid)
	if cpiSeries == nil || cpiSeries.Len() < 10 {
		t.Fatal("no victim CPI history")
	}
	// Find max CPI (during interference) and min CPI after capping
	// within the post-antagonist period.
	vals := cpiSeries.Values()
	var maxCPI, minAfter float64
	maxCPI = 0
	minAfter = 1e9
	for _, v := range vals[len(vals)/3:] {
		if v > maxCPI {
			maxCPI = v
		}
		if v < minAfter {
			minAfter = v
		}
	}
	if maxCPI < 1.3 {
		t.Errorf("interference never visible: max CPI %v", maxCPI)
	}
	if minAfter > 1.2 {
		t.Errorf("victim never recovered: min CPI %v", minAfter)
	}
}

func TestAgentWantSpec(t *testing.T) {
	a, _, _ := newRig(t, nil)
	if !a.WantSpec(model.SpecKey{Job: "search", Platform: model.PlatformA}) {
		t.Error("agent should want its own job's spec")
	}
	if a.WantSpec(model.SpecKey{Job: "search", Platform: model.PlatformB}) {
		t.Error("agent wants wrong-platform spec")
	}
	if a.WantSpec(model.SpecKey{Job: "absent", Platform: model.PlatformA}) {
		t.Error("agent wants spec for absent job")
	}
}

func TestAgentTaskExited(t *testing.T) {
	a, m, vid := newRig(t, nil)
	runSim(a, m, t0, 70)
	a.TaskExited(vid)
	if a.WantSpec(model.SpecKey{Job: "search", Platform: model.PlatformA}) {
		t.Error("agent still wants spec after task exit")
	}
	if a.Manager().CPISeries(vid) != nil {
		t.Error("manager state survived task exit")
	}
}

func TestAgentNoSinkStillDetects(t *testing.T) {
	// Pipeline down: local detection must still work (sink == nil).
	a, m, _ := newRig(t, nil)
	installSearchSpec(a)
	aid := model.TaskID{Job: "mr", Index: 0}
	_ = m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40})
	a.RegisterTask(aid, mrJob)
	incidents := runSim(a, m, t0, 700)
	if len(incidents) == 0 {
		t.Error("no incidents without a sink")
	}
}

func TestAgentUnregisteredTaskSamplesSkipped(t *testing.T) {
	// A task placed on the machine but never registered with the agent
	// produces no samples (and no crash).
	bus := pipeline.NewBus(core.NewSpecBuilder(core.DefaultParams()))
	m := machine.New("m1", interference.DefaultMachine(model.PlatformA), 8, nil)
	a := New(m, core.DefaultParams(), bus)
	id := model.TaskID{Job: "stealth", Index: 0}
	_ = m.AddTask(id, mrJob, antagonistProfile(), &workload.Steady{CPU: 1, Threads: 2})
	runSim(a, m, t0, 130)
	received, _ := bus.Stats()
	if received != 0 {
		t.Errorf("samples for unregistered task: %d", received)
	}
}

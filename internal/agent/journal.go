// Cap journal persistence: the durable, append-only record of every
// cap/uncap the enforcer performs, replayed at startup so a restarted
// agent re-adopts the caps it owns and releases the ones it no longer
// should hold (see core.CapJournal / Enforcer.Reconcile).
package agent

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// journalCompactAt is the entry count at which the journal is folded
// down to its live caps and rewritten. Appends between compactions are
// O(1); compaction itself is the same atomic temp+fsync+rename
// discipline as core.SaveCheckpoint, so a crash mid-compaction leaves
// the previous journal intact.
const journalCompactAt = 4096

// FileCapJournal is a durable core.CapJournal: one JSON entry per
// line, fsynced per append (an actuation record that vanishes in a
// crash defeats the point). Safe for concurrent use.
type FileCapJournal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries []core.CapJournalEntry // in-memory mirror, for compaction
}

// OpenCapJournal opens (or creates) the journal at path and returns it
// along with the entries recovered from disk, oldest first, for
// replay. Torn or corrupt trailing lines — the crash case — are
// dropped with a count, never an error: recovery must proceed on
// whatever prefix survived.
func OpenCapJournal(path string) (j *FileCapJournal, recovered []core.CapJournalEntry, torn int, err error) {
	if data, rerr := os.ReadFile(path); rerr == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e core.CapJournalEntry
			if uerr := json.Unmarshal(line, &e); uerr != nil {
				torn++
				continue
			}
			recovered = append(recovered, e)
		}
	} else if !os.IsNotExist(rerr) {
		return nil, nil, 0, fmt.Errorf("agent: read cap journal: %w", rerr)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("agent: open cap journal: %w", err)
	}
	j = &FileCapJournal{path: path, f: f}
	j.entries = append(j.entries, recovered...)
	return j, recovered, torn, nil
}

// Append implements core.CapJournal: one line, synced to disk.
func (j *FileCapJournal) Append(e core.CapJournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("agent: marshal journal entry: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("agent: cap journal closed")
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("agent: append cap journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("agent: sync cap journal: %w", err)
	}
	j.entries = append(j.entries, e)
	if len(j.entries) >= journalCompactAt {
		return j.compactLocked()
	}
	return nil
}

// Len returns the number of entries in the journal (post-compaction
// entries only reflect live caps).
func (j *FileCapJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// compactLocked folds the journal down to its live caps and atomically
// replaces the file. Callers hold j.mu.
func (j *FileCapJournal) compactLocked() error {
	live, _ := core.ReplayCapEntries(j.entries)
	compacted := make([]core.CapJournalEntry, 0, len(live))
	for _, e := range live {
		compacted = append(compacted, e)
	}
	// Stable order: by task string, for reproducible files.
	for i := 1; i < len(compacted); i++ {
		for k := i; k > 0 && compacted[k].Task < compacted[k-1].Task; k-- {
			compacted[k], compacted[k-1] = compacted[k-1], compacted[k]
		}
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".capjournal-*.tmp")
	if err != nil {
		return fmt.Errorf("agent: compact cap journal: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	w := bufio.NewWriter(tmp)
	for _, e := range compacted {
		data, err := json.Marshal(e)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("agent: compact cap journal: %w", err)
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			tmp.Close()
			return fmt.Errorf("agent: compact cap journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("agent: compact cap journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("agent: compact cap journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("agent: compact cap journal: %w", err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		return fmt.Errorf("agent: publish compacted cap journal: %w", err)
	}
	// Reopen the (renamed-over) file for further appends.
	old := j.f
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("agent: reopen cap journal: %w", err)
	}
	old.Close()
	j.f = f
	j.entries = compacted
	return nil
}

// Close flushes and closes the journal file.
func (j *FileCapJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

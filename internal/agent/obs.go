package agent

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Metrics bundles the agent-layer metrics. All handles are nil-safe;
// a zero Metrics disables instrumentation.
type Metrics struct {
	TickSeconds *obs.Histogram // cpi2_agent_tick_seconds
	Tasks       *obs.Gauge     // cpi2_agent_tasks
}

// NewMetrics registers (or fetches) the agent metric set on r.
// Registration is idempotent, so agents sharing a registry aggregate
// into the same series.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		TickSeconds: r.Histogram("cpi2_agent_tick_seconds",
			"wall-clock duration of one agent tick", obs.LatencyBuckets),
		Tasks: r.Gauge("cpi2_agent_tasks",
			"tasks currently registered with the agent"),
	}
}

// SetMetrics instruments the agent itself (tick latency, task gauge).
// A nil m disables instrumentation.
func (a *Agent) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	a.mu.Lock()
	a.metrics = m
	m.Tasks.Add(float64(len(a.tasks)))
	a.mu.Unlock()
}

// Instrument wires the agent and its manager into reg and events in
// one call: agent tick/task metrics, the core detection/enforcement
// metric set, and the structured event sink (events may be nil; any
// core.EventSink works — an *obs.EventLog directly, or an
// *obs.EventBuffer when emissions must be staged for ordered draining).
func (a *Agent) Instrument(reg *obs.Registry, events core.EventSink) {
	a.SetMetrics(NewMetrics(reg))
	a.manager.SetMetrics(core.NewMetrics(reg))
	if events != nil {
		a.manager.SetEvents(events)
	}
}

package agent

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Metrics bundles the agent-layer metrics. All handles are nil-safe;
// a zero Metrics disables instrumentation.
type Metrics struct {
	TickSeconds *obs.Histogram // cpi2_agent_tick_seconds
	Tasks       *obs.Gauge     // cpi2_agent_tasks
}

// NewMetrics registers (or fetches) the agent metric set on r.
// Registration is idempotent, so agents sharing a registry aggregate
// into the same series.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		TickSeconds: r.Histogram("cpi2_agent_tick_seconds",
			"wall-clock duration of one agent tick", obs.LatencyBuckets),
		Tasks: r.Gauge("cpi2_agent_tasks",
			"tasks currently registered with the agent"),
	}
}

// NewLocalMetrics returns an agent metric set backed by standalone
// (unregistered) cells — a per-machine shard. Agents ticking on
// concurrent goroutines each write their own shard instead of
// hammering the shared registry series' cache lines; a serial
// coordinator folds shards into the registered set with DrainTo. The
// cluster does this once per machine per commit phase.
func NewLocalMetrics() *Metrics {
	return &Metrics{
		TickSeconds: obs.NewHistogram(obs.LatencyBuckets),
		Tasks:       &obs.Gauge{},
	}
}

// DrainTo moves everything accumulated in m into dst and resets m —
// the metric analogue of obs.EventBuffer.DrainTo. The Tasks gauge
// moves as a delta, so dst accumulates the fleet total.
func (m *Metrics) DrainTo(dst *Metrics) {
	if m == nil || dst == nil {
		return
	}
	m.TickSeconds.Drain(dst.TickSeconds)
	m.Tasks.Drain(dst.Tasks)
}

// SetMetrics instruments the agent itself (tick latency, task gauge).
// A nil m disables instrumentation. The task-gauge baseline is applied
// under a.mu so it cannot race concurrent Register/Exit updates.
func (a *Agent) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	a.mu.Lock()
	a.metrics.Store(m)
	m.Tasks.Add(float64(len(a.tasks)))
	a.mu.Unlock()
}

// Instrument wires the agent and its manager into reg and events in
// one call: agent tick/task metrics, the core detection/enforcement
// metric set, and the structured event sink (events may be nil; any
// core.EventSink works — an *obs.EventLog directly, or an
// *obs.EventBuffer when emissions must be staged for ordered draining).
//
// Instrument points the agent directly at the shared registry series —
// right for a daemon running one agent per process (cmd/cpi2agent).
// A simulator ticking many agents in parallel should instead give each
// agent a NewLocalMetrics shard and drain the shards serially, as
// internal/cluster does.
func (a *Agent) Instrument(reg *obs.Registry, events core.EventSink) {
	a.SetMetrics(NewMetrics(reg))
	cm := core.NewMetrics(reg)
	a.manager.SetMetrics(cm)
	a.validator.Metrics = cm
	if events != nil {
		a.manager.SetEvents(events)
	}
}

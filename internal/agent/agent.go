// Package agent implements the per-machine CPI² node agent: the
// "system daemon" of §3.1 plus the "management agent" of §4.1. Each
// tick it drives the duty-cycle perf sampler over the machine's
// per-cgroup counters, turns completed measurements into CPI samples,
// feeds them to the local CPI² manager (detect → correlate → enforce),
// ships them up the pipeline, and expires hard caps.
//
// The agent is transport-agnostic: give it an in-process pipeline Bus
// for simulation, or a TCP pipeline Client in cmd/cpi2agent for a real
// deployment shape.
package agent

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs/trace"
	"repro/internal/perfcnt"
	"repro/internal/pipeline"
)

// Agent is one machine's CPI² daemon.
type Agent struct {
	mach    *machine.Machine
	manager *core.Manager
	sampler *perfcnt.Sampler
	sink    pipeline.SampleSink
	params  core.Params
	// validator gates every sample at egress: garbage from a wrapped
	// counter or zero-instruction window is quarantined here, before it
	// can reach local detection or the wire. Never nil.
	validator *core.SampleValidator
	// readCounters is the bound columnar counter reader handed to the
	// sampler, built once so the per-tick hot path does not re-allocate
	// the method-value closure.
	readCounters func(*perfcnt.Snapshot)
	// sampleBuf is the reusable sample-assembly column: toSamples fills
	// it in place each completed window, and the batch is fully consumed
	// (validated, observed, published-by-copy) within the same Tick.
	sampleBuf []model.Sample

	mu    sync.Mutex
	tasks map[string]taskInfo // cgroup name → identity
	// seq counts sample batches built by this agent; together with the
	// machine name it derives the deterministic per-batch trace ID.
	seq uint64
	// metrics is read lock-free on every tick (the cluster's parallel
	// phase ticks thousands of agents; taking a.mu per tick just to
	// snapshot this handle showed up in profiles). Never nil; a zero
	// Metrics means uninstrumented.
	metrics atomic.Pointer[Metrics]
	// tracer is read lock-free for the same reason; nil inside means
	// untraced (the default).
	tracer atomic.Pointer[trace.Store]
}

type taskInfo struct {
	id  model.TaskID
	job model.Job
}

// New creates an agent for mach. sink may be nil (no sample export —
// local detection still works, which is the availability property the
// paper's design aims for: anomalies are detected on-machine even if
// the pipeline is down).
func New(mach *machine.Machine, params core.Params, sink pipeline.SampleSink) *Agent {
	p := params.Sanitize()
	a := &Agent{
		mach:    mach,
		manager: core.NewManager(mach.Name(), p, mach),
		sampler: perfcnt.NewSampler(perfcnt.Config{
			Duration: p.SamplingDuration,
			Interval: p.SamplingInterval,
		}),
		sink:      sink,
		params:    p,
		validator: core.NewSampleValidator("agent", 256),
		tasks:     make(map[string]taskInfo),
	}
	a.readCounters = mach.ReadCounters
	a.metrics.Store(&Metrics{})
	return a
}

// Machine returns the agent's machine.
func (a *Agent) Machine() *machine.Machine { return a.mach }

// Manager returns the agent's CPI² manager (operator tooling and
// tests reach through this).
func (a *Agent) Manager() *core.Manager { return a.manager }

// Validator returns the agent's egress sample validator, for wiring
// metrics/clock and inspecting the quarantine.
func (a *Agent) Validator() *core.SampleValidator { return a.validator }

// Reconcile replays a cap journal against the machine's live cgroup
// state (see Enforcer.Reconcile). Call once at startup, after tasks
// are registered and before the first Tick.
func (a *Agent) Reconcile(now time.Time, entries []core.CapJournalEntry) (adopted, orphaned []model.TaskID) {
	return a.manager.Enforcer().Reconcile(now, entries)
}

// RegisterTask tells the agent about a placed task; the scheduler (or
// cluster harness) calls this alongside machine.AddTask.
func (a *Agent) RegisterTask(id model.TaskID, job model.Job) {
	a.mu.Lock()
	if _, exists := a.tasks[id.String()]; !exists {
		a.metrics.Load().Tasks.Inc()
	}
	a.tasks[id.String()] = taskInfo{id: id, job: job}
	a.mu.Unlock()
	a.manager.RegisterJob(job)
}

// TaskExited clears agent state for a departed task.
func (a *Agent) TaskExited(id model.TaskID) {
	a.mu.Lock()
	if _, exists := a.tasks[id.String()]; exists {
		a.metrics.Load().Tasks.Dec()
	}
	delete(a.tasks, id.String())
	a.mu.Unlock()
	a.manager.TaskExited(id)
}

// WantSpec implements pipeline.SpecWatcher: the agent only needs specs
// for jobs with tasks on this machine, on this machine's platform.
func (a *Agent) WantSpec(key model.SpecKey) bool {
	if key.Platform != a.mach.Platform() {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, info := range a.tasks {
		if info.id.Job == key.Job {
			return true
		}
	}
	return false
}

// SetTrace directs the agent's causal spans to store and forwards the
// store to the manager (detect/decision spans). Nil disables tracing.
func (a *Agent) SetTrace(store *trace.Store) {
	a.tracer.Store(store)
	a.manager.SetTrace(store)
}

// Trace returns the agent's span store (nil when untraced); control
// and admin endpoints render the causal chain from it.
func (a *Agent) Trace() *trace.Store { return a.tracer.Load() }

// DeliverSpec implements pipeline.SpecWatcher.
func (a *Agent) DeliverSpec(spec model.Spec) {
	if tr := a.tracer.Load(); tr != nil && !spec.UpdatedAt.IsZero() {
		tr.Add(trace.Span{
			TraceID: trace.SpecTraceID(spec.Key().String(), spec.UpdatedAt),
			Stage:   trace.StageSpecRecv,
			Machine: a.mach.Name(),
			Key:     spec.Key().String(),
			Time:    spec.UpdatedAt,
			Detail:  fmt.Sprintf("cpi mean %.3f stddev %.3f", spec.CPIMean, spec.CPIStddev),
		})
	}
	a.manager.UpdateSpec(spec)
}

// Tick runs one agent cycle at now: sample counters, analyse, publish,
// and expire caps. It returns the incidents raised this tick. Call it
// once per simulated second; the duty-cycle sampler internally limits
// real work to window boundaries.
//
// Tick must not be called concurrently on the SAME agent, but DISTINCT
// agents may tick concurrently as long as each agent's sample sink is
// safe for concurrent Publish (the cluster gives every agent its own
// pipeline.Queue and drains the queues serially, in machine order, at
// the tick barrier).
func (a *Agent) Tick(now time.Time) []core.Incident {
	// Lock-free metrics snapshot, and zero wall-clock reads when the
	// tick histogram is off: two time.Now syscalls per machine per tick
	// across a large fleet were pure overhead for uninstrumented runs.
	m := a.metrics.Load()
	var wallStart time.Time
	timed := m.TickSeconds != nil
	if timed {
		wallStart = time.Now()
	}
	measurements := a.sampler.TickInto(now, a.readCounters)
	var incidents []core.Incident
	if len(measurements) > 0 {
		samples := a.validator.Filter(a.toSamples(now, measurements))
		for _, s := range samples {
			if inc := a.manager.Observe(s); inc != nil {
				incidents = append(incidents, *inc)
			}
		}
		if a.sink != nil && len(samples) > 0 {
			_ = a.sink.Publish(samples) // losing samples is tolerable
		}
	}
	a.manager.Tick(now)
	if timed {
		m.TickSeconds.Observe(time.Since(wallStart).Seconds())
	}
	return incidents
}

func (a *Agent) toSamples(now time.Time, ms []perfcnt.Measurement) []model.Sample {
	a.mu.Lock()
	defer a.mu.Unlock()
	// One trace context per batch, derived from (machine, batch seq):
	// agent ticks are serial per machine, so the ID sequence is
	// identical at any cluster worker count and under any fault plan.
	a.seq++
	tid := trace.SampleTraceID(a.mach.Name(), a.seq)
	out := a.sampleBuf[:0]
	for _, m := range ms {
		info, ok := a.tasks[m.Cgroup]
		if !ok {
			continue // task exited between window end and now
		}
		out = append(out, model.Sample{
			Job:       info.id.Job,
			Task:      info.id,
			Platform:  a.mach.Platform(),
			Timestamp: now,
			CPUUsage:  m.CPUUsage,
			CPI:       m.CPI,
			Machine:   a.mach.Name(),
			TraceID:   tid,
		})
	}
	if tr := a.tracer.Load(); tr != nil && len(out) > 0 {
		tr.Add(trace.Span{
			TraceID: tid,
			Stage:   trace.StageSample,
			Machine: a.mach.Name(),
			Time:    now,
			Detail:  fmt.Sprintf("%d samples", len(out)),
		})
	}
	a.sampleBuf = out
	return out
}

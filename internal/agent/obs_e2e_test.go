package agent

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interference"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestObservabilityEndToEnd runs a real agent+aggregator pair over TCP
// with admin HTTP servers on both sides, then scrapes /metrics and
// /debug/incidents exactly as a monitoring system would, asserting the
// scraped numbers match the in-process ground truth.
func TestObservabilityEndToEnd(t *testing.T) {
	params := core.Params{MinSamplesPerTask: 5}

	// Aggregator side: bus + TCP server + admin server, instrumented.
	aggReg := obs.NewRegistry()
	builder := core.NewSpecBuilder(params)
	builder.SetMetrics(core.NewMetrics(aggReg))
	bus := pipeline.NewBus(builder)
	bus.SetMetrics(pipeline.NewMetrics(aggReg))
	srv := pipeline.NewServer(bus)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	aggAdmin := obs.NewAdminServer(aggReg, nil)
	aggAddr, err := aggAdmin.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aggAdmin.Close()

	// Agent side: one machine, instrumented, with its own admin server.
	reg := obs.NewRegistry()
	events := obs.NewEventLog(256, nil)
	m := machine.New("m00", interference.DefaultMachine(model.PlatformA), 16, nil)
	var a *Agent
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	client, err := pipeline.Dial(ctx, addr, func(s model.Spec) { a.DeliverSpec(s) })
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Subscribe(); err != nil {
		t.Fatal(err)
	}
	a = New(m, params, client)
	a.Instrument(reg, events)
	admin := obs.NewAdminServer(reg, events)
	admin.HandleJSON("/debug/incidents", func(q url.Values) (any, error) {
		return core.IncidentRecords(a.Manager().Incidents()), nil
	})
	admin.HandleJSON("/debug/specs", func(q url.Values) (any, error) {
		return a.Manager().Detector().Specs(), nil
	})
	adminAddr, err := admin.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// Six svc tasks: enough for the fleet-wide robustness gates.
	svcJob := model.Job{Name: "svc", Class: model.ClassLatencySensitive, Priority: model.PriorityProduction}
	svcProfile := &interference.Profile{
		DefaultCPI: 1.0, CacheFootprint: 1.2, MemBandwidth: 0.6,
		Sensitivity: 1.2, BaseL3MPKI: 2, NoiseSigma: 0.05,
	}
	for j := 0; j < 6; j++ {
		id := model.TaskID{Job: "svc", Index: j}
		if err := m.AddTask(id, svcJob, svcProfile, &workload.Steady{CPU: 1.0, Threads: 8}); err != nil {
			t.Fatal(err)
		}
		a.RegisterTask(id, svcJob)
	}

	// Phase 1: healthy run, build the spec from published samples.
	now := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	step := func(seconds int) {
		for s := 0; s < seconds; s++ {
			m.Tick(now, time.Second)
			a.Tick(now)
			now = now.Add(time.Second)
		}
	}
	step(8 * 60)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r, _ := bus.Stats(); r >= 6*7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("samples never reached the aggregator")
		}
		time.Sleep(10 * time.Millisecond)
	}
	bus.Recompute(now)
	for {
		if _, ok := a.Manager().Detector().Spec(model.SpecKey{Job: "svc", Platform: model.PlatformA}); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("spec push never arrived")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: antagonist lands; run until a cap incident fires.
	antagJob := model.Job{Name: "hog", Class: model.ClassBatch, Priority: model.PriorityBatch}
	antagID := model.TaskID{Job: "hog", Index: 0}
	err = m.AddTask(antagID, antagJob, &interference.Profile{
		DefaultCPI: 1.5, CacheFootprint: 8, MemBandwidth: 6,
		Sensitivity: 0.1, BaseL3MPKI: 12, NoiseSigma: 0.05,
	}, &workload.Steady{CPU: 6, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	a.RegisterTask(antagID, antagJob)
	capped := false
	for s := 0; s < 12*60 && !capped; s++ {
		m.Tick(now, time.Second)
		for _, inc := range a.Tick(now) {
			if inc.Decision.Action == core.ActionCap {
				capped = true
			}
		}
		now = now.Add(time.Second)
	}
	if !capped {
		t.Fatal("no cap incident; nothing to observe")
	}

	// Scrape the agent's /metrics like a monitoring system would.
	status, body := httpGet(t, "http://"+adminAddr+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	for _, want := range []string{
		"cpi2_samples_observed_total",
		"cpi2_anomalies_total",
		"cpi2_caps_active",
		"cpi2_correlation_seconds_bucket",
		"cpi2_agent_tick_seconds_bucket",
		"cpi2_agent_tasks 7",
		`cpi2_incidents_total{action="cap"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	mm := core.NewMetrics(reg) // idempotent: same series the agent uses
	wantLine := fmt.Sprintf("cpi2_samples_observed_total %g", mm.SamplesObserved.Value())
	if !strings.Contains(body, wantLine) {
		t.Errorf("/metrics does not contain %q", wantLine)
	}

	// /debug/incidents must match Manager.Incidents() exactly.
	status, body = httpGet(t, "http://"+adminAddr+"/debug/incidents")
	if status != http.StatusOK {
		t.Fatalf("/debug/incidents status = %d", status)
	}
	var recs []core.IncidentRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/debug/incidents not valid JSON: %v\n%s", err, body)
	}
	incs := a.Manager().Incidents()
	if len(recs) != len(incs) {
		t.Errorf("/debug/incidents has %d records, Manager.Incidents has %d", len(recs), len(incs))
	}
	nCap := 0
	for _, r := range recs {
		if r.Action == "cap" {
			nCap++
		}
	}
	if want := int(mm.Incidents.With("cap").Value()); nCap != want {
		t.Errorf("cap records = %d, counter says %d", nCap, want)
	}

	// /debug/specs serves the pushed spec table.
	status, body = httpGet(t, "http://"+adminAddr+"/debug/specs")
	if status != http.StatusOK || !strings.Contains(body, `"svc"`) {
		t.Errorf("/debug/specs = %d %s", status, body)
	}

	// /healthz on both sides.
	for _, host := range []string{adminAddr, aggAddr} {
		if status, body := httpGet(t, "http://"+host+"/healthz"); status != http.StatusOK || !strings.Contains(body, `"ok"`) {
			t.Errorf("healthz on %s = %d %s", host, status, body)
		}
	}

	// The aggregator's registry saw the pipeline traffic.
	_, aggBody := httpGet(t, "http://"+aggAddr+"/metrics")
	for _, want := range []string{
		"cpi2_pipeline_samples_total",
		"cpi2_pipeline_connected_agents 1",
		"cpi2_specs_computed_total",
	} {
		if !strings.Contains(aggBody, want) {
			t.Errorf("aggregator /metrics missing %q", want)
		}
	}

	// The event log carries the incidents too.
	if got := len(events.Recent(0, "incident")); got != len(incs) {
		t.Errorf("incident events = %d, want %d", got, len(incs))
	}
}

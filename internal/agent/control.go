package agent

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/model"
)

// ControlServer exposes the operator interface of §5 over a line-based
// TCP protocol: operators can inspect a machine's CPI² state, hard-cap
// suspects manually, and release caps — the workflow Google's system
// operators used during the conservative rollout. cmd/cpi2ctl is the
// matching client.
//
// Protocol: one command per line, one response per command. Responses
// are a single line starting with "ok" or "err", optionally followed
// by JSON payload lines and a terminating "." line for multi-line
// results.
//
//	STATUS
//	TASKS
//	CAPS
//	CAP <job>/<index> <quota>
//	UNCAP <job>/<index>
//	RELEASE-ALL
//	INCIDENTS <n>
//	TRACE <trace-id|job/index>
type ControlServer struct {
	agent *Agent
	// state guards the agent/machine against the driving loop: the
	// machine simulator is not safe for concurrent use, so a daemon
	// that ticks the agent on one goroutine passes the same lock here
	// and holds it around every tick. May be nil when the caller
	// serializes externally (tests).
	state sync.Locker

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewControlServer wraps an agent with a control endpoint. state (may
// be nil) is locked around every command; a live daemon passes the
// mutex its tick loop holds.
func NewControlServer(a *Agent, state sync.Locker) *ControlServer {
	return &ControlServer{agent: a, state: state}
}

// Serve starts listening on addr and returns the bound address.
func (c *ControlServer) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("agent: control listen: %w", err)
	}
	c.mu.Lock()
	c.ln = ln
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (c *ControlServer) Close() error {
	c.mu.Lock()
	ln := c.ln
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}

func (c *ControlServer) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp := c.execute(strings.TrimSpace(sc.Text()))
		w.WriteString(resp)
		if !strings.HasSuffix(resp, "\n") {
			w.WriteByte('\n')
		}
		w.Flush()
	}
}

// execute runs one command line and renders the response.
func (c *ControlServer) execute(line string) string {
	if c.state != nil {
		c.state.Lock()
		defer c.state.Unlock()
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "err empty command"
	}
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "STATUS":
		return c.status()
	case "TASKS":
		return c.tasks()
	case "CAPS":
		return c.caps()
	case "CAP":
		if len(fields) != 3 {
			return "err usage: CAP <job>/<index> <quota>"
		}
		task, err := parseTaskID(fields[1])
		if err != nil {
			return "err " + err.Error()
		}
		quota, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || quota <= 0 {
			return "err bad quota"
		}
		if err := c.agent.Machine().Cap(task, quota); err != nil {
			return "err " + err.Error()
		}
		return fmt.Sprintf("ok capped %v at %g CPU-sec/sec", task, quota)
	case "UNCAP":
		if len(fields) != 2 {
			return "err usage: UNCAP <job>/<index>"
		}
		task, err := parseTaskID(fields[1])
		if err != nil {
			return "err " + err.Error()
		}
		if err := c.agent.Machine().Uncap(task); err != nil {
			return "err " + err.Error()
		}
		return fmt.Sprintf("ok uncapped %v", task)
	case "RELEASE-ALL":
		released := c.agent.Manager().Enforcer().ReleaseAll()
		return fmt.Sprintf("ok released %d caps", len(released))
	case "INCIDENTS":
		n := 10
		if len(fields) == 2 {
			if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
				n = v
			}
		}
		return c.incidents(n)
	case "TRACE":
		if len(fields) != 2 {
			return "err usage: TRACE <trace-id|job/index>"
		}
		return c.trace(fields[1])
	default:
		return "err unknown command " + cmd
	}
}

func parseTaskID(s string) (model.TaskID, error) { return model.ParseTaskID(s) }

func (c *ControlServer) status() string {
	m := c.agent.Machine()
	caps := c.agent.Manager().Enforcer().ActiveCaps()
	return fmt.Sprintf("ok machine=%s platform=%s cpus=%d tasks=%d threads=%d util=%.2f caps=%d",
		m.Name(), m.Platform(), m.NumCPUs(), m.NumTasks(), m.ThreadCount(), m.Utilization(), len(caps))
}

func (c *ControlServer) tasks() string {
	m := c.agent.Machine()
	var sb strings.Builder
	sb.WriteString("ok\n")
	for _, id := range m.Tasks() {
		t := m.Task(id)
		capped := ""
		if m.IsCapped(id) {
			capped = " CAPPED"
		}
		fmt.Fprintf(&sb, "%s %s %s%s\n", id, t.Job.Class, t.Job.Priority, capped)
	}
	sb.WriteString(".")
	return sb.String()
}

func (c *ControlServer) caps() string {
	// The machine's cgroups are the source of truth: they include
	// operator-applied caps that the enforcer does not own. Annotate
	// CPI²-owned caps (which auto-expire) as such.
	m := c.agent.Machine()
	owned := c.agent.Manager().Enforcer().ActiveCaps()
	var sb strings.Builder
	sb.WriteString("ok\n")
	for _, id := range m.Tasks() {
		if !m.IsCapped(id) {
			continue
		}
		if q, ok := owned[id]; ok {
			fmt.Fprintf(&sb, "%s %g cpi2\n", id, q)
		} else {
			fmt.Fprintf(&sb, "%s - operator\n", id)
		}
	}
	sb.WriteString(".")
	return sb.String()
}

// trace renders the full causal chain for one trace context: every
// span the agent recorded under the trace ID (sample → spool → detect
// → decision, whatever reached this machine) plus the incidents it
// produced. The argument is either a raw trace ID or a task ID; a
// task resolves to the most recent incident naming it as victim or
// cap target — the operator's "why was this task capped?" entry
// point.
func (c *ControlServer) trace(arg string) string {
	incs := c.agent.Manager().Incidents()
	id := arg
	if task, err := parseTaskID(arg); err == nil {
		// Task form: find the newest incident involving the task.
		id = ""
		for i := len(incs) - 1; i >= 0; i-- {
			if incs[i].Victim == task || incs[i].Decision.Target == task {
				id = incs[i].TraceID
				break
			}
		}
		if id == "" {
			return fmt.Sprintf("err no incident involves %v", task)
		}
	}
	var sb strings.Builder
	sb.WriteString("ok\n")
	lines := 0
	for _, sp := range c.agent.Trace().ByTrace(id) {
		b, err := json.Marshal(sp)
		if err != nil {
			continue
		}
		sb.Write(b)
		sb.WriteByte('\n')
		lines++
	}
	for _, inc := range incs {
		if inc.TraceID != id {
			continue
		}
		row := map[string]interface{}{
			"stage":      "incident",
			"trace_id":   inc.TraceID,
			"time":       inc.Time,
			"victim":     inc.Victim.String(),
			"victim_cpi": inc.VictimCPI,
			"threshold":  inc.Threshold,
			"action":     inc.Decision.Action.String(),
			"target":     inc.Decision.Target.String(),
			"reason":     inc.Decision.Reason,
		}
		if len(inc.Suspects) > 0 {
			row["top_suspect"] = inc.Suspects[0].Task.String()
			row["correlation"] = inc.Suspects[0].Correlation
		}
		b, err := json.Marshal(row)
		if err != nil {
			continue
		}
		sb.Write(b)
		sb.WriteByte('\n')
		lines++
	}
	if lines == 0 {
		return "err no spans or incidents for trace " + id
	}
	sb.WriteString(".")
	return sb.String()
}

func (c *ControlServer) incidents(n int) string {
	incs := c.agent.Manager().Incidents()
	if len(incs) > n {
		incs = incs[len(incs)-n:]
	}
	var sb strings.Builder
	sb.WriteString("ok\n")
	for _, inc := range incs {
		row := map[string]interface{}{
			"time":       inc.Time,
			"victim":     inc.Victim.String(),
			"victim_cpi": inc.VictimCPI,
			"threshold":  inc.Threshold,
			"action":     inc.Decision.Action.String(),
			"target":     inc.Decision.Target.String(),
			"reason":     inc.Decision.Reason,
		}
		if len(inc.Suspects) > 0 {
			row["top_suspect"] = inc.Suspects[0].Task.String()
			row["correlation"] = inc.Suspects[0].Correlation
		}
		b, err := json.Marshal(row)
		if err != nil {
			continue
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	sb.WriteString(".")
	return sb.String()
}

package agent

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interference"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// TestFleetOverTCP is the distributed integration test: several
// machines, each with its own agent, publish CPI samples to one
// aggregation server over real TCP sockets; the server builds specs
// from fleet-wide data and pushes them back; a machine whose victim
// then suffers interference detects and caps using the *pushed* spec,
// never a locally installed one. This is Figure 6 end to end.
func TestFleetOverTCP(t *testing.T) {
	params := core.Params{MinSamplesPerTask: 5}
	bus := pipeline.NewBus(core.NewSpecBuilder(params))
	srv := pipeline.NewServer(bus)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const nMachines = 4
	svcJob := model.Job{Name: "svc", Class: model.ClassLatencySensitive, Priority: model.PriorityProduction}
	svcProfile := &interference.Profile{
		DefaultCPI: 1.0, CacheFootprint: 1.2, MemBandwidth: 0.6,
		Sensitivity: 1.2, BaseL3MPKI: 2, NoiseSigma: 0.05,
	}

	type node struct {
		m      *machine.Machine
		a      *Agent
		client *pipeline.Client
	}
	nodes := make([]*node, nMachines)
	for i := range nodes {
		m := machine.New(fmt.Sprintf("m%02d", i), interference.DefaultMachine(model.PlatformA), 16, nil)
		n := &node{m: m}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		client, err := pipeline.Dial(ctx, addr, func(s model.Spec) {
			n.a.DeliverSpec(s) // push path: spec reaches the detector over TCP
		})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		if err := client.Subscribe(); err != nil {
			t.Fatal(err)
		}
		n.client = client
		n.a = New(m, params, client)
		// Two svc tasks per machine → 8 tasks fleet-wide (≥ MinTasks).
		for j := 0; j < 2; j++ {
			id := model.TaskID{Job: "svc", Index: i*2 + j}
			if err := m.AddTask(id, svcJob, svcProfile, &workload.Steady{CPU: 1.0, Threads: 8}); err != nil {
				t.Fatal(err)
			}
			n.a.RegisterTask(id, svcJob)
		}
		nodes[i] = n
	}

	// Phase 1: healthy fleet publishes samples for 8 simulated minutes.
	now := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	step := func(seconds int) {
		for s := 0; s < seconds; s++ {
			for _, n := range nodes {
				n.m.Tick(now, time.Second)
				n.a.Tick(now)
			}
			now = now.Add(time.Second)
		}
	}
	step(8 * 60)

	// Wait for the samples to cross the sockets.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r, _ := bus.Stats(); r >= nMachines*2*7 {
			break
		}
		if time.Now().After(deadline) {
			r, d := bus.Stats()
			t.Fatalf("samples missing: received %d dropped %d", r, d)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Aggregator recomputes and pushes specs over TCP.
	specs := bus.Recompute(now)
	if len(specs) != 1 || specs[0].Job != "svc" {
		t.Fatalf("specs = %+v", specs)
	}
	for {
		n := nodes[0]
		if _, ok := n.a.Manager().Detector().Spec(model.SpecKey{Job: "svc", Platform: model.PlatformA}); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("spec push never reached agent 0")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// All agents must have it before the interference phase starts.
	for i, n := range nodes {
		for {
			if _, ok := n.a.Manager().Detector().Spec(model.SpecKey{Job: "svc", Platform: model.PlatformA}); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("spec push never reached agent %d", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Phase 2: an antagonist lands on machine 2 only.
	antagJob := model.Job{Name: "hog", Class: model.ClassBatch, Priority: model.PriorityBatch}
	antagID := model.TaskID{Job: "hog", Index: 0}
	err = nodes[2].m.AddTask(antagID, antagJob,
		&interference.Profile{
			DefaultCPI: 1.5, CacheFootprint: 8, MemBandwidth: 6,
			Sensitivity: 0.1, BaseL3MPKI: 12, NoiseSigma: 0.05,
		}, &workload.Steady{CPU: 6, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	nodes[2].a.RegisterTask(antagID, antagJob)

	var capInc *core.Incident
	for s := 0; s < 12*60 && capInc == nil; s++ {
		for _, n := range nodes {
			n.m.Tick(now, time.Second)
			for _, inc := range n.a.Tick(now) {
				if inc.Decision.Action == core.ActionCap && capInc == nil {
					ic := inc
					capInc = &ic
				}
			}
		}
		now = now.Add(time.Second)
	}
	if capInc == nil {
		t.Fatal("no cap despite interference (pushed spec unused?)")
	}
	if capInc.Machine != "m02" {
		t.Errorf("cap on %s, want m02", capInc.Machine)
	}
	if capInc.Decision.Target != antagID {
		t.Errorf("decision = %+v", capInc.Decision)
	}
	if !nodes[2].m.IsCapped(antagID) {
		t.Error("antagonist not capped")
	}
	// Healthy machines may raise the occasional no-action incident (a
	// task in the spec's statistical tail crossing 2σ on noise), but
	// must never cap anyone: there is no correlated suspect.
	for i, n := range nodes {
		if i == 2 {
			continue
		}
		for _, other := range n.a.Manager().Incidents() {
			if other.Decision.Action == core.ActionCap {
				t.Errorf("machine %d capped %v with no antagonist present", i, other.Decision.Target)
			}
		}
	}
}

package agent

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestAgentRestartRecovers: agents keep all detection state in memory
// (flag histories, usage series, active caps), so a daemon restart
// loses it. The design property is graceful degradation: after a
// restart with re-pushed specs, the new agent re-learns within one
// violation window and caps the antagonist again — no persistent
// state needed (the paper's design keeps machines autonomous).
func TestAgentRestartRecovers(t *testing.T) {
	a, m, _ := newRig(t, nil)
	installSearchSpec(a)
	aid := model.TaskID{Job: "mr", Index: 0}
	if err := m.AddTask(aid, mrJob, antagonistProfile(), &workload.Steady{CPU: 5, Threads: 40}); err != nil {
		t.Fatal(err)
	}
	a.RegisterTask(aid, mrJob)

	// Old agent detects and caps.
	now := t0
	var capped bool
	for s := 0; s < 900 && !capped; s++ {
		m.Tick(now, time.Second)
		a.Tick(now)
		capped = m.IsCapped(aid)
		now = now.Add(time.Second)
	}
	if !capped {
		t.Fatal("first agent never capped")
	}

	// Daemon restart: a fresh agent takes over the same machine. The
	// stale cap it no longer tracks is released (the real agent clears
	// caps it does not own at startup), specs are re-pushed by the
	// aggregator, and tasks re-registered from the machine's state.
	_ = m.Uncap(aid)
	a2 := New(m, core.DefaultParams(), nil)
	for _, id := range m.Tasks() {
		a2.RegisterTask(id, m.Task(id).Job)
	}
	installSearchSpec(a2)

	recapped := false
	start := now
	for s := 0; s < 900 && !recapped; s++ {
		m.Tick(now, time.Second)
		a2.Tick(now)
		recapped = m.IsCapped(aid)
		now = now.Add(time.Second)
	}
	if !recapped {
		t.Fatal("restarted agent never re-detected the antagonist")
	}
	// Re-detection needs ≥3 minutes of fresh violations plus a sample
	// cadence — well under 15 minutes.
	if d := now.Sub(start); d > 15*time.Minute {
		t.Errorf("recovery took %v", d)
	}
}

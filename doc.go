// Package repro is a complete Go reproduction of "CPI²: CPU
// performance isolation for shared compute clusters" (Zhang, Tune,
// Hagmann, Jnagal, Gokhale, Wilkes — EuroSys 2013).
//
// The module root holds the benchmark harness (bench_test.go): one
// testing.B benchmark per paper table and figure, plus microbenchmarks
// for the hot paths whose costs the paper quotes. The system itself
// lives under internal/ (see README.md for the architecture map), the
// runnable binaries under cmd/, and the tutorial programs under
// examples/.
package repro

// Package repro's top-level benchmark harness: one testing.B benchmark
// per table and figure of the paper (regenerating the result at small
// scale per iteration), plus microbenchmarks for the hot paths whose
// costs the paper quotes — the antagonist correlation analysis (§4.2:
// "about 100µs"), outlier detection, spec aggregation, and the
// machine-simulator tick.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...
//
// The per-figure benchmarks double as a one-command regeneration of
// the whole evaluation: each reports the experiment's key metric via
// b.ReportMetric.
package repro

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/interference"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/workload"
)

// benchExperiment runs one experiment per iteration at a small scale
// and reports its first metric.
func benchExperiment(b *testing.B, id string, keyMetric string, unit string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		// Fixed seed: benchmarks time a known-good deterministic run
		// (scenario experiments are calibrated per seed).
		rep, err := experiments.Run(id, experiments.Options{Seed: 1, Scale: 0.05})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if keyMetric != "" {
			last = rep.Metric(keyMetric).Measured
		}
	}
	if keyMetric != "" {
		b.ReportMetric(last, unit)
	}
}

func BenchmarkFig1TaskThreadCDF(b *testing.B) {
	benchExperiment(b, "fig1", "median tasks/machine", "tasks")
}

func BenchmarkFig2TPSvsIPS(b *testing.B) {
	benchExperiment(b, "fig2", "TPS/IPS correlation", "r")
}

func BenchmarkFig3LatencyVsCPI(b *testing.B) {
	benchExperiment(b, "fig3", "latency/CPI correlation", "r")
}

func BenchmarkFig4PerTierCorrelation(b *testing.B) {
	benchExperiment(b, "fig4", "leaf correlation", "r")
}

func BenchmarkFig5DiurnalCPI(b *testing.B) {
	benchExperiment(b, "fig5", "coefficient of variation", "cv")
}

func BenchmarkTable1CPISpecs(b *testing.B) {
	benchExperiment(b, "tab1", "jobA mean", "cpi")
}

func BenchmarkFig7GEVFit(b *testing.B) {
	benchExperiment(b, "fig7", "GEV ξ", "xi")
}

func BenchmarkTable2Defaults(b *testing.B) {
	benchExperiment(b, "tab2", "correlation threshold", "thr")
}

func BenchmarkFig8Case1(b *testing.B) {
	benchExperiment(b, "fig8", "top suspect corr", "corr")
}

func BenchmarkFig9Case2(b *testing.B) {
	benchExperiment(b, "fig9", "improvement ratio", "ratio")
}

func BenchmarkFig10Case3(b *testing.B) {
	benchExperiment(b, "fig10", "caps applied", "caps")
}

func BenchmarkFig11Case4(b *testing.B) {
	benchExperiment(b, "fig11", "relative CPI", "ratio")
}

func BenchmarkFig12LameDuck(b *testing.B) {
	benchExperiment(b, "fig12", "burst threads", "threads")
}

func BenchmarkFig13MapReduceExit(b *testing.B) {
	benchExperiment(b, "fig13", "capping episodes endured", "episodes")
}

func BenchmarkSec7ReportRate(b *testing.B) {
	benchExperiment(b, "sec7rate", "reports/machine-day", "rate")
}

func BenchmarkFig14LoadIndependence(b *testing.B) {
	benchExperiment(b, "fig14", "corr(util, victim rel CPI)", "r")
}

func BenchmarkFig15Accuracy(b *testing.B) {
	benchExperiment(b, "fig15", "prod TP rate @0.35", "tp")
}

func BenchmarkFig16ProductionAccuracy(b *testing.B) {
	benchExperiment(b, "fig16", "median relative CPI", "ratio")
}

// --- ablations and extensions ---

func BenchmarkAblationFilter(b *testing.B) {
	benchExperiment(b, "ablation-filter", "false incidents, filter off", "incidents")
}

func BenchmarkAblationDetector(b *testing.B) {
	benchExperiment(b, "ablation-detector", "false alarms/h @1σ,1 violation", "alarms")
}

func BenchmarkAblationWindow(b *testing.B) {
	benchExperiment(b, "ablation-window", "accuracy @10min window", "acc")
}

func BenchmarkAblationFeedback(b *testing.B) {
	benchExperiment(b, "ablation-feedback", "victim mean CPI, feedback", "cpi")
}

func BenchmarkAblationAgeWeight(b *testing.B) {
	benchExperiment(b, "ablation-ageweight", "days to adapt, weight 0.9", "days")
}

func BenchmarkExtGroup(b *testing.B) {
	benchExperiment(b, "ext-group", "group correlation (Pearson)", "r")
}

func BenchmarkExtNUMA(b *testing.B) {
	benchExperiment(b, "ext-numa", "victim CPI, cross socket", "cpi")
}

func BenchmarkExtStraggler(b *testing.B) {
	benchExperiment(b, "ext-straggler", "completion ratio", "ratio")
}

// --- microbenchmarks for the paper's quoted costs ---

// BenchmarkCorrelationAnalysis measures one §4.2 antagonist
// correlation over a 10-minute window of minute samples. The paper
// quotes ≈100µs per analysis on 2011 hardware.
func BenchmarkCorrelationAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10 // 10-minute window, one sample per minute
	cpi := make([]float64, n)
	usage := make([]float64, n)
	for i := range cpi {
		cpi[i] = 1 + rng.Float64()*3
		usage[i] = rng.Float64() * 5
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += core.Correlation(cpi, usage, 2.0)
	}
	_ = sink
}

// BenchmarkRankSuspects measures a full ranking round against the 40+
// co-tenants of a busy machine (the Case 1 scenario's working set).
func BenchmarkRankSuspects(b *testing.B) {
	day0 := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(2))
	victim := timeseries.New()
	for i := 0; i < 20; i++ {
		_ = victim.Append(day0.Add(time.Duration(i)*time.Minute), 1+3*rng.Float64())
	}
	suspects := make([]core.SuspectInput, 40)
	for s := range suspects {
		series := timeseries.New()
		for i := 0; i < 20; i++ {
			_ = series.Append(day0.Add(time.Duration(i)*time.Minute), rng.Float64()*4)
		}
		suspects[s] = core.SuspectInput{
			Task:  model.TaskID{Job: model.JobName("job"), Index: s},
			Usage: series,
		}
	}
	now := day0.Add(20 * time.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RankSuspects(victim, 2.0, suspects, now, 10*time.Minute, time.Minute)
	}
}

// BenchmarkDetectorObserve measures the per-sample cost of local
// outlier detection — this runs once per task per minute on every
// machine in the fleet, so it must be cheap.
func BenchmarkDetectorObserve(b *testing.B) {
	d := core.NewDetector(core.DefaultParams())
	d.UpdateSpec(model.Spec{
		Job: "j", Platform: model.PlatformA,
		NumSamples: 100000, NumTasks: 100, CPIMean: 1.8, CPIStddev: 0.16,
	})
	day0 := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(model.Sample{
			Job: "j", Task: model.TaskID{Job: "j", Index: i % 16},
			Platform:  model.PlatformA,
			Timestamp: day0.Add(time.Duration(i) * time.Minute),
			CPUUsage:  1, CPI: 1.8,
		})
	}
}

// BenchmarkSpecBuilderAddSample measures sample ingestion in the
// aggregation pipeline (thousands per second per cluster).
func BenchmarkSpecBuilderAddSample(b *testing.B) {
	sb := core.NewSpecBuilder(core.DefaultParams())
	day0 := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sb.AddSample(model.Sample{
			Job: "j", Task: model.TaskID{Job: "j", Index: i % 1000},
			Platform:  model.PlatformA,
			Timestamp: day0,
			CPUUsage:  1, CPI: 1.5,
		})
	}
}

// BenchmarkMachineTick measures one simulator tick of a 40-task
// machine — the unit of cost that bounds how big a cluster the
// experiment harness can simulate.
func BenchmarkMachineTick(b *testing.B) {
	m := machine.New("bench", interference.DefaultMachine(model.PlatformA), 16, rand.New(rand.NewSource(3)))
	prof := &interference.Profile{
		DefaultCPI: 1.2, CacheFootprint: 1, MemBandwidth: 0.5,
		Sensitivity: 0.5, BaseL3MPKI: 2, NoiseSigma: 0.05,
	}
	for i := 0; i < 40; i++ {
		id := model.TaskID{Job: "j", Index: i}
		if err := m.AddTask(id, model.Job{Name: "j"}, prof, &workload.Steady{CPU: 0.3, Threads: 4}); err != nil {
			b.Fatal(err)
		}
	}
	day0 := time.Date(2011, 11, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick(day0.Add(time.Duration(i)*time.Second), time.Second)
	}
}

// BenchmarkGEVFit measures fitting a GEV to 10k samples (the Figure 7
// analysis over a day of one job's data).
func BenchmarkGEVFit(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := stats.GEV{Mu: 1.73, Sigma: 0.133, Xi: -0.0534}
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = g.Rand(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FitGEV(xs); err != nil {
			b.Fatal(err)
		}
	}
}
